// Package ramfs is the RAMFS component: Unikraft's in-memory file-system
// backend, the cubicle whose separation from VFSCORE is the paper's
// headline partitioning experiment (Figures 9 and 10). File data lives in
// simulated memory pages obtained through the configured allocator
// (RAMFS's own sub-allocator in the SQLite deployment, ALLOC in the NGINX
// deployment); data moves between caller buffers and file pages through
// the shared LIBC memcpy, executing with RAMFS's privileges (Figure 2 ❹).
package ramfs

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/ualloc"
	"cubicleos/internal/ulibc"
	"cubicleos/internal/vfscore"
	"cubicleos/internal/vm"
)

// Name of the component in deployments.
const Name = "RAMFS"

// DefaultOpWork models the ramfs path length per operation.
const DefaultOpWork = 100

// inode is one file or directory.
type inode struct {
	ino      uint64
	dir      bool
	size     uint64
	pages    []vm.Addr // one entry per PageSize chunk
	children map[string]uint64
}

// Module is the RAMFS component state.
type Module struct {
	inodes map[uint64]*inode
	next   uint64
	alloc  ualloc.Allocator
	libc   *ulibc.Client
	opWork uint64
	// OpCount counts backend operations.
	OpCount uint64
}

// New creates an empty RAMFS with a root directory. The allocator and
// LIBC client are injected at deployment wiring time (SetDeps).
func New() *Module {
	fs := &Module{inodes: make(map[uint64]*inode), next: 2, opWork: DefaultOpWork}
	fs.inodes[1] = &inode{ino: 1, dir: true, children: make(map[string]uint64)}
	return fs
}

// SetDeps wires the allocator strategy and LIBC client.
func (fs *Module) SetDeps(alloc ualloc.Allocator, libc *ulibc.Client) {
	fs.alloc = alloc
	fs.libc = libc
}

// Reset discards all file-system state, restoring the empty post-New
// image: it is the component's supervisor restart hook. File pages
// obtained from a foreign allocator are not freed back — the faulted
// cubicle cannot be trusted to run teardown code, so a restart leaks
// them, exactly as a crashed process leaks what it never freed.
func (fs *Module) Reset() {
	fs.inodes = make(map[uint64]*inode)
	fs.inodes[1] = &inode{ino: 1, dir: true, children: make(map[string]uint64)}
	fs.next = 2
}

// SetOpWork overrides the per-operation path cost.
func (fs *Module) SetOpWork(c uint64) { fs.opWork = c }

// split normalises a path into components.
func split(path string) []string {
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		if p != "" && p != "." {
			out = append(out, p)
		}
	}
	return out
}

// walk resolves path to (parent inode, leaf name, leaf inode or nil).
func (fs *Module) walk(path string) (*inode, string, *inode, uint64) {
	cur := fs.inodes[1]
	parts := split(path)
	if len(parts) == 0 {
		return nil, "", cur, vfscore.EOK
	}
	for i, name := range parts {
		if !cur.dir {
			return nil, "", nil, vfscore.ENOTDIR
		}
		child, ok := cur.children[name]
		if i == len(parts)-1 {
			if !ok {
				return cur, name, nil, vfscore.ENOENT
			}
			return cur, name, fs.inodes[child], vfscore.EOK
		}
		if !ok {
			return nil, "", nil, vfscore.ENOENT
		}
		cur = fs.inodes[child]
	}
	return nil, "", nil, vfscore.ENOENT
}

func (fs *Module) readPath(e *cubicle.Env, ptr, n uint64) string {
	var sb strings.Builder
	sb.Grow(int(n))
	e.View(vm.Addr(ptr), n, func(_ uint64, chunk []byte) { sb.Write(chunk) })
	return sb.String()
}

func errRet(errno uint64) []uint64 { return []uint64{0, errno} }
func okRet(val uint64) []uint64    { return []uint64{val, vfscore.EOK} }

func (fs *Module) lookup(e *cubicle.Env, ptr, n uint64) []uint64 {
	e.Work(fs.opWork)
	fs.OpCount++
	_, _, node, errno := fs.walk(fs.readPath(e, ptr, n))
	if errno != vfscore.EOK || node == nil {
		return errRet(uint64(errno))
	}
	return okRet(node.ino)
}

func (fs *Module) create(e *cubicle.Env, ptr, n uint64) []uint64 {
	e.Work(fs.opWork)
	fs.OpCount++
	parent, name, node, errno := fs.walk(fs.readPath(e, ptr, n))
	if node != nil {
		return errRet(vfscore.EEXIST)
	}
	if errno != vfscore.ENOENT || parent == nil {
		return errRet(uint64(errno))
	}
	ino := fs.next
	fs.next++
	fs.inodes[ino] = &inode{ino: ino}
	parent.children[name] = ino
	return okRet(ino)
}

func (fs *Module) mkdir(e *cubicle.Env, ptr, n uint64) []uint64 {
	e.Work(fs.opWork)
	fs.OpCount++
	parent, name, node, errno := fs.walk(fs.readPath(e, ptr, n))
	if node != nil {
		return errRet(vfscore.EEXIST)
	}
	if errno != vfscore.ENOENT || parent == nil {
		return errRet(uint64(errno))
	}
	ino := fs.next
	fs.next++
	fs.inodes[ino] = &inode{ino: ino, dir: true, children: make(map[string]uint64)}
	parent.children[name] = ino
	return okRet(ino)
}

func (fs *Module) unlink(e *cubicle.Env, ptr, n uint64) []uint64 {
	e.Work(fs.opWork)
	fs.OpCount++
	parent, name, node, errno := fs.walk(fs.readPath(e, ptr, n))
	if errno != vfscore.EOK || node == nil {
		return errRet(uint64(errno))
	}
	if node.dir && len(node.children) > 0 {
		return errRet(vfscore.EINVAL)
	}
	fs.releasePages(e, node)
	delete(parent.children, name)
	delete(fs.inodes, node.ino)
	return okRet(0)
}

func (fs *Module) releasePages(e *cubicle.Env, node *inode) {
	for _, p := range node.pages {
		fs.alloc.Free(e, p)
	}
	node.pages = nil
	node.size = 0
}

// ensurePages grows the page list to cover size bytes.
func (fs *Module) ensurePages(e *cubicle.Env, node *inode, size uint64) {
	need := int((size + vm.PageSize - 1) / vm.PageSize)
	for len(node.pages) < need {
		node.pages = append(node.pages, fs.alloc.Malloc(e, vm.PageSize))
	}
}

// zeroRange clears [from, to) within the file's allocated pages so that
// holes created by truncation or sparse writes read back as zeroes
// (fresh pages from the allocator may be recycled and carry old data).
func (fs *Module) zeroRange(e *cubicle.Env, node *inode, from, to uint64) {
	for off := from; off < to; {
		pi := off / vm.PageSize
		po := off % vm.PageSize
		chunk := vm.PageSize - po
		if chunk > to-off {
			chunk = to - off
		}
		if pi < uint64(len(node.pages)) {
			fs.libc.Memset(e, node.pages[pi].Add(po), 0, chunk)
		}
		off += chunk
	}
}

// pageAt returns the file page covering chunk pi, converting a page-table
// drift (size says the data exists, the page list says it does not — the
// signature of a fault interrupting a multi-step update) into a typed
// fault the supervisor can contain, instead of a raw Go index panic that
// would kill the simulator.
func (fs *Module) pageAt(e *cubicle.Env, node *inode, pi uint64) vm.Addr {
	if pi >= uint64(len(node.pages)) {
		panic(&cubicle.APIError{Cubicle: e.T.Current(), Op: "ramfs_page",
			Reason: fmt.Sprintf("inode %d: size %d implies page %d but only %d allocated",
				node.ino, node.size, pi, len(node.pages))})
	}
	return node.pages[pi]
}

func (fs *Module) node(ino uint64) (*inode, uint64) {
	n, ok := fs.inodes[ino]
	if !ok {
		return nil, vfscore.ENOENT
	}
	return n, vfscore.EOK
}

func (fs *Module) read(e *cubicle.Env, ino, off, buf, n uint64) []uint64 {
	e.Work(fs.opWork)
	fs.OpCount++
	node, errno := fs.node(ino)
	if errno != vfscore.EOK {
		return errRet(errno)
	}
	if node.dir {
		return errRet(vfscore.EISDIR)
	}
	if off >= node.size {
		return okRet(0)
	}
	if off+n > node.size {
		n = node.size - off
	}
	done := uint64(0)
	for done < n {
		pi := (off + done) / vm.PageSize
		po := (off + done) % vm.PageSize
		chunk := vm.PageSize - po
		if chunk > n-done {
			chunk = n - done
		}
		// Copy file page -> caller buffer via shared LIBC, running with
		// RAMFS's privileges: the caller buffer access trap-and-maps
		// against the caller's open window.
		fs.libc.Memcpy(e, vm.Addr(buf+done), fs.pageAt(e, node, pi).Add(po), chunk)
		done += chunk
	}
	return okRet(n)
}

func (fs *Module) write(e *cubicle.Env, ino, off, buf, n uint64) []uint64 {
	e.Work(fs.opWork)
	fs.OpCount++
	node, errno := fs.node(ino)
	if errno != vfscore.EOK {
		return errRet(errno)
	}
	if node.dir {
		return errRet(vfscore.EISDIR)
	}
	fs.ensurePages(e, node, off+n)
	if off > node.size {
		// Sparse write: the gap between the old end and the write offset
		// must read back as zeroes.
		fs.zeroRange(e, node, node.size, off)
	}
	done := uint64(0)
	for done < n {
		pi := (off + done) / vm.PageSize
		po := (off + done) % vm.PageSize
		chunk := vm.PageSize - po
		if chunk > n-done {
			chunk = n - done
		}
		fs.libc.Memcpy(e, fs.pageAt(e, node, pi).Add(po), vm.Addr(buf+done), chunk)
		done += chunk
	}
	if off+n > node.size {
		node.size = off + n
	}
	return okRet(n)
}

func (fs *Module) getSize(e *cubicle.Env, ino uint64) []uint64 {
	e.Work(fs.opWork)
	fs.OpCount++
	node, errno := fs.node(ino)
	if errno != vfscore.EOK {
		return errRet(errno)
	}
	return okRet(node.size)
}

func (fs *Module) setSize(e *cubicle.Env, ino, size uint64) []uint64 {
	e.Work(fs.opWork)
	fs.OpCount++
	node, errno := fs.node(ino)
	if errno != vfscore.EOK {
		return errRet(errno)
	}
	if node.dir {
		return errRet(vfscore.EISDIR)
	}
	if size == 0 {
		fs.releasePages(e, node)
		return okRet(0)
	}
	fs.ensurePages(e, node, size)
	if size < node.size {
		keep := int((size + vm.PageSize - 1) / vm.PageSize)
		for _, p := range node.pages[keep:] {
			fs.alloc.Free(e, p)
		}
		node.pages = node.pages[:keep]
		// Zero the truncated tail of the last kept page so a later
		// extension reads back zeroes, as POSIX requires.
		if po := size % vm.PageSize; po != 0 && keep > 0 {
			fs.libc.Memset(e, node.pages[keep-1].Add(po), 0, vm.PageSize-po)
		}
	} else if size > node.size {
		fs.zeroRange(e, node, node.size, size)
	}
	node.size = size
	return okRet(0)
}

func (fs *Module) readdir(e *cubicle.Env, ino, idx, buf, bufLen uint64) []uint64 {
	e.Work(fs.opWork)
	fs.OpCount++
	node, errno := fs.node(ino)
	if errno != vfscore.EOK {
		return errRet(errno)
	}
	if !node.dir {
		return errRet(vfscore.ENOTDIR)
	}
	names := make([]string, 0, len(node.children))
	for name := range node.children {
		names = append(names, name)
	}
	sort.Strings(names)
	if idx >= uint64(len(names)) {
		return errRet(vfscore.ENOENT)
	}
	name := names[idx]
	if uint64(len(name)) > bufLen {
		return errRet(vfscore.EINVAL)
	}
	e.Write(vm.Addr(buf), []byte(name))
	return okRet(uint64(len(name)))
}

func (fs *Module) rename(e *cubicle.Env, p1, l1, p2, l2 uint64) []uint64 {
	e.Work(fs.opWork)
	fs.OpCount++
	fromParent, fromName, node, errno := fs.walk(fs.readPath(e, p1, l1))
	if errno != vfscore.EOK || node == nil {
		return errRet(uint64(errno))
	}
	toParent, toName, existing, errno2 := fs.walk(fs.readPath(e, p2, l2))
	if errno2 == vfscore.EOK && existing != nil {
		// POSIX rename replaces the target.
		fs.releasePages(e, existing)
		delete(fs.inodes, existing.ino)
	} else if errno2 != vfscore.ENOENT || toParent == nil {
		return errRet(uint64(errno2))
	}
	delete(fromParent.children, fromName)
	toParent.children[toName] = node.ino
	return okRet(0)
}

// Snapshot serialises the file-system tree — inode metadata, page
// addresses and file CONTENT — into a deterministic blob for warm
// recovery. Content must travel in the blob because in the NGINX
// deployment file pages are owned by ALLOC: they are not part of RAMFS's
// own page image, and their bytes at restore time may postdate the
// checkpoint. Inodes and directory entries are emitted in sorted order so
// identical trees encode identically.
func (fs *Module) Snapshot(sc *cubicle.SnapCtx) ([]byte, error) {
	var b []byte
	b = binary.LittleEndian.AppendUint64(b, fs.next)
	b = binary.LittleEndian.AppendUint64(b, fs.OpCount)
	inos := make([]uint64, 0, len(fs.inodes))
	for ino := range fs.inodes {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	b = binary.LittleEndian.AppendUint32(b, uint32(len(inos)))
	for _, ino := range inos {
		n := fs.inodes[ino]
		b = binary.LittleEndian.AppendUint64(b, n.ino)
		if n.dir {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.LittleEndian.AppendUint64(b, n.size)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(n.pages)))
		for _, p := range n.pages {
			b = binary.LittleEndian.AppendUint64(b, uint64(p))
		}
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(names)))
		for _, name := range names {
			b = binary.LittleEndian.AppendUint32(b, uint32(len(name)))
			b = append(b, name...)
			b = binary.LittleEndian.AppendUint64(b, n.children[name])
		}
		// File content, page by page, via the monitor-privileged context.
		for off := uint64(0); off < n.size; {
			pi := off / vm.PageSize
			chunk := vm.PageSize - off%vm.PageSize
			if chunk > n.size-off {
				chunk = n.size - off
			}
			if pi >= uint64(len(n.pages)) {
				return nil, fmt.Errorf("ramfs: inode %d size %d exceeds its %d pages", n.ino, n.size, len(n.pages))
			}
			data, err := sc.ReadMem(n.pages[pi].Add(off%vm.PageSize), chunk)
			if err != nil {
				return nil, err
			}
			b = append(b, data...)
			off += chunk
		}
	}
	return b, nil
}

// snapReader is a bounds-checked little-endian cursor over a Restore blob.
type snapReader struct {
	b   []byte
	off int
	bad bool
}

func (r *snapReader) take(n int) []byte {
	if r.bad || n < 0 || len(r.b)-r.off < n {
		r.bad = true
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}
func (r *snapReader) u8() uint8 {
	v := r.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}
func (r *snapReader) u32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}
func (r *snapReader) u64() uint64 {
	v := r.take(8)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

// Restore rebuilds the file-system tree from a Snapshot blob and writes
// every file's content back to its recorded page addresses. An unmapped
// page address (the owning allocator was itself restarted, or the page
// was reclaimed) fails the restore, and the supervisor falls back to the
// cold rebuild.
func (fs *Module) Restore(sc *cubicle.SnapCtx, blob []byte) error {
	r := &snapReader{b: blob}
	next := r.u64()
	opCount := r.u64()
	count := r.u32()
	if count > 1<<20 {
		return fmt.Errorf("ramfs: implausible inode count %d", count)
	}
	inodes := make(map[uint64]*inode, count)
	type writeback struct {
		addr vm.Addr
		data []byte
	}
	var wbs []writeback
	for i := uint32(0); i < count && !r.bad; i++ {
		n := &inode{ino: r.u64(), dir: r.u8() == 1, size: r.u64()}
		npages := r.u32()
		if npages > 1<<20 {
			return fmt.Errorf("ramfs: implausible page count %d", npages)
		}
		for j := uint32(0); j < npages; j++ {
			n.pages = append(n.pages, vm.Addr(r.u64()))
		}
		nchildren := r.u32()
		if nchildren > 1<<20 {
			return fmt.Errorf("ramfs: implausible child count %d", nchildren)
		}
		if n.dir || nchildren > 0 {
			n.children = make(map[string]uint64, nchildren)
		}
		for j := uint32(0); j < nchildren; j++ {
			nameLen := r.u32()
			name := string(r.take(int(nameLen)))
			n.children[name] = r.u64()
		}
		for off := uint64(0); off < n.size && !r.bad; {
			pi := off / vm.PageSize
			chunk := vm.PageSize - off%vm.PageSize
			if chunk > n.size-off {
				chunk = n.size - off
			}
			if pi >= uint64(len(n.pages)) {
				return fmt.Errorf("ramfs: inode %d content exceeds its pages", n.ino)
			}
			data := r.take(int(chunk))
			wbs = append(wbs, writeback{addr: n.pages[pi].Add(off % vm.PageSize), data: data})
			off += chunk
		}
		inodes[n.ino] = n
	}
	if r.bad || r.off != len(blob) {
		return fmt.Errorf("ramfs: corrupt snapshot blob (off %d of %d)", r.off, len(blob))
	}
	if inodes[1] == nil || !inodes[1].dir {
		return fmt.Errorf("ramfs: snapshot has no root directory")
	}
	// Parse-then-commit: simulated memory is only touched once the whole
	// blob validated, so a corrupt snapshot cannot half-apply.
	for _, wb := range wbs {
		if err := sc.WriteMem(wb.addr, wb.data); err != nil {
			return err
		}
	}
	fs.inodes = inodes
	fs.next = next
	fs.OpCount = opCount
	return nil
}

// Component returns the RAMFS component for the builder. Its exports form
// the backend callback table that VFSCORE invokes.
func (fs *Module) Component() *cubicle.Component {
	guard := func(op string, n int, fn func(e *cubicle.Env, a []uint64) []uint64) func(e *cubicle.Env, a []uint64) []uint64 {
		return func(e *cubicle.Env, a []uint64) []uint64 {
			cubicle.GuardArgs(e, op, a, n)
			return fn(e, a)
		}
	}
	return &cubicle.Component{
		Name:      Name,
		Kind:      cubicle.KindIsolated,
		OnRestart: fs.Reset,
		Snapshot:  fs.Snapshot,
		Restore:   fs.Restore,
		Exports: []cubicle.ExportDecl{
			{Name: "ramfs_lookup", RegArgs: 2, Fn: guard("ramfs_lookup", 2, func(e *cubicle.Env, a []uint64) []uint64 { return fs.lookup(e, a[0], a[1]) })},
			{Name: "ramfs_create", RegArgs: 2, Fn: guard("ramfs_create", 2, func(e *cubicle.Env, a []uint64) []uint64 { return fs.create(e, a[0], a[1]) })},
			{Name: "ramfs_read", RegArgs: 4, Fn: guard("ramfs_read", 4, func(e *cubicle.Env, a []uint64) []uint64 { return fs.read(e, a[0], a[1], a[2], a[3]) })},
			{Name: "ramfs_write", RegArgs: 4, Fn: guard("ramfs_write", 4, func(e *cubicle.Env, a []uint64) []uint64 { return fs.write(e, a[0], a[1], a[2], a[3]) })},
			{Name: "ramfs_getsize", RegArgs: 1, Fn: guard("ramfs_getsize", 1, func(e *cubicle.Env, a []uint64) []uint64 { return fs.getSize(e, a[0]) })},
			{Name: "ramfs_setsize", RegArgs: 2, Fn: guard("ramfs_setsize", 2, func(e *cubicle.Env, a []uint64) []uint64 { return fs.setSize(e, a[0], a[1]) })},
			{Name: "ramfs_unlink", RegArgs: 2, Fn: guard("ramfs_unlink", 2, func(e *cubicle.Env, a []uint64) []uint64 { return fs.unlink(e, a[0], a[1]) })},
			{Name: "ramfs_mkdir", RegArgs: 2, Fn: guard("ramfs_mkdir", 2, func(e *cubicle.Env, a []uint64) []uint64 { return fs.mkdir(e, a[0], a[1]) })},
			{Name: "ramfs_readdir", RegArgs: 4, Fn: guard("ramfs_readdir", 4, func(e *cubicle.Env, a []uint64) []uint64 { return fs.readdir(e, a[0], a[1], a[2], a[3]) })},
			{Name: "ramfs_fsync", RegArgs: 1, Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				e.Work(fs.opWork)
				fs.OpCount++
				return okRet(0)
			}},
			{Name: "ramfs_rename", RegArgs: 4, Fn: guard("ramfs_rename", 4, func(e *cubicle.Env, a []uint64) []uint64 { return fs.rename(e, a[0], a[1], a[2], a[3]) })},
		},
	}
}

// BackendTable resolves RAMFS's exports into a VFSCORE backend callback
// table on behalf of the VFSCORE cubicle — the load-time interposition of
// §5.2.
func BackendTable(m *cubicle.Monitor, vfsCubicle cubicle.ID) vfscore.Backend {
	return vfscore.Backend{
		Lookup:  m.MustResolve(vfsCubicle, Name, "ramfs_lookup"),
		Create:  m.MustResolve(vfsCubicle, Name, "ramfs_create"),
		Read:    m.MustResolve(vfsCubicle, Name, "ramfs_read"),
		Write:   m.MustResolve(vfsCubicle, Name, "ramfs_write"),
		GetSize: m.MustResolve(vfsCubicle, Name, "ramfs_getsize"),
		SetSize: m.MustResolve(vfsCubicle, Name, "ramfs_setsize"),
		Unlink:  m.MustResolve(vfsCubicle, Name, "ramfs_unlink"),
		Mkdir:   m.MustResolve(vfsCubicle, Name, "ramfs_mkdir"),
		Readdir: m.MustResolve(vfsCubicle, Name, "ramfs_readdir"),
		Fsync:   m.MustResolve(vfsCubicle, Name, "ramfs_fsync"),
		Rename:  m.MustResolve(vfsCubicle, Name, "ramfs_rename"),
	}
}
