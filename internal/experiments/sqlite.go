// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): the NGINX latency curve (Figure 7), the SQLite
// query-time ablation (Figure 6), the cubicle call-count graphs (Figures
// 5 and 8), and the partitioning comparison against Genode and
// microkernels (Figures 9 and 10).
package experiments

import (
	"fmt"

	"cubicleos/internal/boot"
	"cubicleos/internal/cubicle"
	"cubicleos/internal/plat"
	"cubicleos/internal/ramfs"
	"cubicleos/internal/speedtest"
	"cubicleos/internal/sqldb"
	"cubicleos/internal/ualloc"
	"cubicleos/internal/uktime"
	"cubicleos/internal/vfscore"
	"cubicleos/internal/vm"
)

// UnikraftWorkScale is re-exported from the boot package for the harness.
const UnikraftWorkScale = boot.UnikraftWorkScale

// DBCacheCap is the page-cache size used by all SQLite experiments.
const DBCacheCap = 128

// SQLiteTarget is a CubicleOS SQLite deployment: the Figure 8 layout with
// seven isolated cubicles (SQLITE, VFSCORE, RAMFS, PLAT, ALLOC, TIME,
// BOOT) plus the shared LIBC and RANDOM.
type SQLiteTarget struct {
	Sys    *boot.System
	DB     *sqldb.DB
	Runner *speedtest.Runner

	time *uktime.Client
	plat *plat.Client
	log  vm.Addr
}

// sqliteComponent returns the application component (SQLite + the
// speedtest1 driver, as in the paper).
func sqliteComponent() *cubicle.Component {
	return &cubicle.Component{
		Name: "SQLITE", Kind: cubicle.KindIsolated,
		Exports: []cubicle.ExportDecl{
			{Name: "sqlite_main", Fn: func(e *cubicle.Env, a []uint64) []uint64 { return nil }},
		},
	}
}

// bootComponent returns the BOOT cubicle of Figure 8: boot-time glue that
// probes the platform and primes the allocator.
func bootComponent() *cubicle.Component {
	return &cubicle.Component{
		Name: "BOOT", Kind: cubicle.KindIsolated,
		Exports: []cubicle.ExportDecl{
			{Name: "boot_main", Fn: func(e *cubicle.Env, a []uint64) []uint64 { return nil }},
		},
	}
}

// NewSQLiteTarget boots a CubicleOS SQLite deployment in the given mode.
// groups fuses components (nil = fully separated, the CubicleOS-4-style
// deployment of Figure 8; {"VFSCORE","RAMFS"→"CORE"} gives CubicleOS-3).
// workScale scales the engine's modelled compute (see UnikraftWorkScale).
func NewSQLiteTarget(mode cubicle.Mode, groups map[string]string, size int, workScale float64) (*SQLiteTarget, error) {
	t := &SQLiteTarget{}
	sys, err := boot.NewFS(boot.Config{
		Mode:   mode,
		Groups: groups,
		Extra:  []*cubicle.Component{sqliteComponent(), bootComponent()},
	})
	if err != nil {
		return nil, err
	}
	t.Sys = sys
	if workScale > 0 {
		sys.M.Clock.SetWorkScale(workScale)
	}

	// Boot-time activity from the BOOT cubicle (the Figure 8 BOOT edges).
	if err := sys.RunAs("BOOT", func(e *cubicle.Env) {
		pc := plat.NewClient(sys.M, sys.Cubs["BOOT"].ID)
		pc.BootProbe(e)
		tc := uktime.NewClient(sys.M, sys.Cubs["BOOT"].ID)
		tc.MonotonicNs(e)
		ac := ualloc.NewClient(sys.M, sys.Cubs["BOOT"].ID)
		scratch := ac.Malloc(e, vm.PageSize)
		ac.Free(e, scratch)
	}); err != nil {
		return nil, err
	}

	// Application initialisation inside the SQLITE cubicle.
	err = sys.RunAs("SQLITE", func(e *cubicle.Env) {
		sqliteID := sys.Cubs["SQLITE"].ID
		vfs := vfscore.NewClient(sys.M, sqliteID)
		vfs.InitBuffers(e, e.CubicleOf(ramfs.Name))
		// The database I/O buffer: page-aligned, windowed to the FS stack.
		ioBuf := e.HeapAlloc(sqldb.PageSize)
		wid := e.WindowInit()
		e.WindowAdd(wid, ioBuf, sqldb.PageSize)
		e.WindowOpen(wid, e.CubicleOf(vfscore.Name))
		e.WindowOpen(wid, e.CubicleOf(ramfs.Name))
		// Coarse-grained arena from ALLOC (Figure 8: "ALLOC is used only
		// for coarse-grained allocations").
		ac := ualloc.NewClient(sys.M, sqliteID)
		arena := ac.Malloc(e, 8*vm.PageSize)
		_ = arena
		db, err := sqldb.Open(e, vfs, "/speedtest.db", ioBuf, DBCacheCap)
		if err != nil {
			panic(&cubicle.APIError{Cubicle: sqliteID, Op: "open", Reason: err.Error()})
		}
		// The port's window discipline: open/close the I/O window around
		// every file I/O call (Figure 4 style).
		db.Pager().SetWindowDiscipline(wid, e.CubicleOf(vfscore.Name), e.CubicleOf(ramfs.Name))
		t.DB = db
		t.Runner = speedtest.New(db, speedtest.Config{Size: size})
		t.time = uktime.NewClient(sys.M, sqliteID)
		t.plat = plat.NewClient(sys.M, sqliteID)
		t.log = e.HeapAlloc(256)
		lwid := e.WindowInit()
		e.WindowAdd(lwid, t.log, 256)
		e.WindowOpen(lwid, e.CubicleOf(plat.Name))
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Setup prepares the speedtest schema and data.
func (t *SQLiteTarget) Setup() error {
	return t.Sys.RunAs("SQLITE", func(e *cubicle.Env) {
		if err := t.Runner.Setup(); err != nil {
			panic(&cubicle.APIError{Cubicle: e.Cubicle(), Op: "setup", Reason: err.Error()})
		}
	})
}

// RunQuery executes one speedtest query inside the SQLITE cubicle and
// returns the virtual cycles it consumed. Per query the driver also
// timestamps via TIME and logs a line via PLAT, as speedtest1 does.
func (t *SQLiteTarget) RunQuery(id int) (uint64, error) {
	start := t.Sys.M.Clock.Cycles()
	err := t.Sys.RunAs("SQLITE", func(e *cubicle.Env) {
		t.time.MonotonicNs(e)
		if err := t.Runner.Run(id); err != nil {
			panic(&cubicle.APIError{Cubicle: e.Cubicle(), Op: "query", Reason: err.Error()})
		}
		line := fmt.Sprintf("speedtest1 %d ok\n", id)
		e.Write(t.log, []byte(line))
		t.plat.ConsoleWrite(e, t.log, uint64(len(line)))
	})
	if err != nil {
		return 0, err
	}
	return t.Sys.M.Clock.Cycles() - start, nil
}

// RunAll runs every query in ID order and returns per-query cycles.
func (t *SQLiteTarget) RunAll() ([]speedtest.Measurement, error) {
	if err := t.Setup(); err != nil {
		return nil, err
	}
	out := make([]speedtest.Measurement, 0, len(speedtest.QueryIDs))
	for _, id := range speedtest.QueryIDs {
		c, err := t.RunQuery(id)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", id, err)
		}
		out = append(out, speedtest.Measurement{ID: id, Cycles: c, GroupA: speedtest.InGroupA(id)})
	}
	return out, nil
}
