package experiments

import (
	"fmt"
	"sort"
	"strings"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/cycles"
	"cubicleos/internal/siege"
	"cubicleos/internal/speedtest"
	"cubicleos/internal/sqldb"
	"cubicleos/internal/ukernel"
	"cubicleos/internal/vfscore"
)

// Figure 9 compartment configurations. In the partitioning comparison the
// virtual-file-system module is "a module that combines the PLAT, VFSCORE,
// ALLOC, and BOOT cubicles" (§6.5): CubicleOS-3 additionally builds the
// RAMFS driver into it (Figure 9a); CubicleOS-4 separates RAMFS
// (Figure 9b). TIMER and SQLITE stay separate in both.
var (
	groups3 = map[string]string{vfscore.Name: "CORE", "RAMFS": "CORE",
		"PLAT": "CORE", "ALLOC": "CORE", "BOOT": "CORE"}
	groups4 = map[string]string{vfscore.Name: "CORE",
		"PLAT": "CORE", "ALLOC": "CORE", "BOOT": "CORE"}
)

// --- Figure 6: SQLite query times under the ablation ladder ------------------

// Fig6Row is one query's execution time under the four configurations of
// Figure 6.
type Fig6Row struct {
	ID     int
	GroupA bool
	// Cycles per configuration.
	Unikraft, NoMPK, NoACL, Full uint64
}

// Ratio returns Full/Unikraft.
func (r Fig6Row) Ratio() float64 { return float64(r.Full) / float64(r.Unikraft) }

// Fig6 runs speedtest1 under baseline Unikraft, CubicleOS without MPK,
// CubicleOS without ACLs, and full CubicleOS (all on the 7-cubicle
// Figure 8 deployment), reporting per-query cycles.
func Fig6(size int) ([]Fig6Row, error) {
	rows := make(map[int]*Fig6Row)
	for _, id := range speedtest.QueryIDs {
		rows[id] = &Fig6Row{ID: id, GroupA: speedtest.InGroupA(id)}
	}
	for _, cfg := range []struct {
		mode cubicle.Mode
		set  func(r *Fig6Row, c uint64)
	}{
		{cubicle.ModeUnikraft, func(r *Fig6Row, c uint64) { r.Unikraft = c }},
		{cubicle.ModeTrampoline, func(r *Fig6Row, c uint64) { r.NoMPK = c }},
		{cubicle.ModeNoACL, func(r *Fig6Row, c uint64) { r.NoACL = c }},
		{cubicle.ModeFull, func(r *Fig6Row, c uint64) { r.Full = c }},
	} {
		t, err := NewSQLiteTarget(cfg.mode, nil, size, UnikraftWorkScale)
		if err != nil {
			return nil, err
		}
		ms, err := t.RunAll()
		if err != nil {
			return nil, fmt.Errorf("%v: %w", cfg.mode, err)
		}
		for _, m := range ms {
			cfg.set(rows[m.ID], m.Cycles)
		}
	}
	out := make([]Fig6Row, 0, len(rows))
	for _, id := range speedtest.QueryIDs {
		out = append(out, *rows[id])
	}
	return out, nil
}

// Fig6Summary aggregates Figure 6 into the paper's two query groups.
type Fig6Summary struct {
	// Mean Full/Unikraft slowdown per group.
	GroupASlowdown, GroupBSlowdown float64
	// Mean incremental overheads for group A (trampolines, +MPK, +ACLs),
	// as fractions of the previous rung.
	ATramp, AMPK, AACL float64
	BTramp, BMPK, BACL float64
}

// Summarise computes the group means the paper quotes in §6.4.
func Summarise(rows []Fig6Row) Fig6Summary {
	var s Fig6Summary
	var na, nb int
	for _, r := range rows {
		tramp := float64(r.NoMPK) / float64(r.Unikraft)
		mpk := float64(r.NoACL) / float64(r.NoMPK)
		acl := float64(r.Full) / float64(r.NoACL)
		if r.GroupA {
			s.GroupASlowdown += r.Ratio()
			s.ATramp += tramp
			s.AMPK += mpk
			s.AACL += acl
			na++
		} else {
			s.GroupBSlowdown += r.Ratio()
			s.BTramp += tramp
			s.BMPK += mpk
			s.BACL += acl
			nb++
		}
	}
	s.GroupASlowdown /= float64(na)
	s.ATramp /= float64(na)
	s.AMPK /= float64(na)
	s.AACL /= float64(na)
	s.GroupBSlowdown /= float64(nb)
	s.BTramp /= float64(nb)
	s.BMPK /= float64(nb)
	s.BACL /= float64(nb)
	return s
}

// --- Figure 7: NGINX download latency vs transfer size ------------------------

// Fig7Sizes is the x-axis of Figure 7.
var Fig7Sizes = []int{1 << 10, 2 << 10, 8 << 10, 32 << 10, 64 << 10, 128 << 10,
	512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20}

// Fig7Row is one transfer size's latency under baseline Unikraft and
// full CubicleOS.
type Fig7Row struct {
	Size            int
	BaselineMs      float64
	CubicleOSMs     float64
	BaselineCycles  uint64
	CubicleOSCycles uint64
}

// Ratio returns the CubicleOS/baseline latency ratio.
func (r Fig7Row) Ratio() float64 { return r.CubicleOSMs / r.BaselineMs }

// Fig7 measures download latency for each file size on the 8-cubicle
// NGINX deployment (Figure 5), baseline vs CubicleOS.
func Fig7() ([]Fig7Row, error) {
	run := func(mode cubicle.Mode) (map[int]*siege.Result, error) {
		tgt, err := siege.NewTarget(mode)
		if err != nil {
			return nil, err
		}
		out := make(map[int]*siege.Result)
		for _, size := range Fig7Sizes {
			name := fmt.Sprintf("/file-%d.bin", size)
			data := make([]byte, size)
			for i := range data {
				data[i] = byte(i * 31)
			}
			if err := tgt.PutFile(name, data); err != nil {
				return nil, err
			}
			// Warm request, then the measured one (the paper measures
			// steady-state siege latencies).
			if _, err := tgt.Fetch(name); err != nil {
				return nil, err
			}
			res, err := tgt.Fetch(name)
			if err != nil {
				return nil, err
			}
			if res.Status != 200 || len(res.Body) != size {
				return nil, fmt.Errorf("size %d: bad response (status %d, %d bytes)", size, res.Status, len(res.Body))
			}
			out[size] = res
		}
		return out, nil
	}
	base, err := run(cubicle.ModeUnikraft)
	if err != nil {
		return nil, err
	}
	full, err := run(cubicle.ModeFull)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig7Row, 0, len(Fig7Sizes))
	for _, size := range Fig7Sizes {
		rows = append(rows, Fig7Row{
			Size:            size,
			BaselineMs:      float64(base[size].Latency.Microseconds()) / 1000,
			CubicleOSMs:     float64(full[size].Latency.Microseconds()) / 1000,
			BaselineCycles:  base[size].Cycles,
			CubicleOSCycles: full[size].Cycles,
		})
	}
	return rows, nil
}

// --- Figures 5 and 8: cubicle call graphs --------------------------------------

// CallEdge is one directed edge of a call-count graph.
type CallEdge struct {
	From, To string
	Count    uint64
}

// CallGraph is the call-count graph of a run.
type CallGraph struct {
	Edges []CallEdge
}

// graphFrom converts monitor stats into a named call graph.
func graphFrom(m *cubicle.Monitor) *CallGraph {
	names := make(map[cubicle.ID]string)
	for _, c := range m.Cubicles() {
		names[c.ID] = c.Name
	}
	g := &CallGraph{}
	for _, ec := range m.Stats.SortedEdges() {
		from := names[ec.From]
		if ec.From == cubicle.MonitorID {
			from = "ENTRY"
		}
		g.Edges = append(g.Edges, CallEdge{From: from, To: names[ec.To], Count: ec.Count})
	}
	return g
}

// Count returns the count on edge from→to (0 if absent).
func (g *CallGraph) Count(from, to string) uint64 {
	for _, e := range g.Edges {
		if e.From == from && e.To == to {
			return e.Count
		}
	}
	return 0
}

// String renders the graph as a table.
func (g *CallGraph) String() string {
	var sb strings.Builder
	for _, e := range g.Edges {
		fmt.Fprintf(&sb, "%-10s -> %-10s %10d\n", e.From, e.To, e.Count)
	}
	return sb.String()
}

// Fig5 reproduces the NGINX cubicle graph: it serves a siege workload of
// random static files and reports the cross-cubicle call counts during
// the measurement window.
func Fig5(requests int) (*CallGraph, error) {
	tgt, err := siege.NewTarget(cubicle.ModeFull)
	if err != nil {
		return nil, err
	}
	files := []string{"/a.html", "/b.css", "/c.js", "/d.png"}
	sizes := []int{2 << 10, 8 << 10, 32 << 10, 128 << 10}
	for i, f := range files {
		data := make([]byte, sizes[i])
		if err := tgt.PutFile(f, data); err != nil {
			return nil, err
		}
	}
	// Measurement window starts after provisioning, as in the paper
	// ("call counts obtained during benchmark measurement time").
	tgt.Sys.M.Stats.Reset()
	for i := 0; i < requests; i++ {
		if _, err := tgt.Fetch(files[i%len(files)]); err != nil {
			return nil, err
		}
	}
	return graphFrom(tgt.Sys.M), nil
}

// Fig8 reproduces the SQLite cubicle graph including boot-time calls
// ("call counts include boot time").
func Fig8(size int) (*CallGraph, error) {
	t, err := NewSQLiteTarget(cubicle.ModeFull, nil, size, UnikraftWorkScale)
	if err != nil {
		return nil, err
	}
	if _, err := t.RunAll(); err != nil {
		return nil, err
	}
	return graphFrom(t.Sys.M), nil
}

// --- Figures 9 and 10: partitioning comparison ---------------------------------

// perQuery maps measurements by query ID.
func perQuery(ms []speedtest.Measurement) map[int]uint64 {
	out := make(map[int]uint64, len(ms))
	for _, m := range ms {
		out[m.ID] = m.Cycles
	}
	return out
}

// meanSlowdown is the average per-query slowdown of cfg against base —
// the paper's "average slowdown factor across all speedtest1 queries".
func meanSlowdown(cfg, base map[int]uint64) float64 {
	var sum float64
	var n int
	for id, b := range base {
		if c, ok := cfg[id]; ok && b > 0 {
			sum += float64(c) / float64(b)
			n++
		}
	}
	return sum / float64(n)
}

// ukernelRun boots a message-passing deployment and runs speedtest1.
func ukernelRun(model ukernel.KernelModel, components, size int) (map[int]uint64, error) {
	app := sqliteComponent()
	d, err := ukernel.NewSQLite(model, components, app)
	if err != nil {
		return nil, err
	}
	return hostedSpeedtest(d.Sys, d.VFS, size)
}

// linuxRun runs speedtest1 on the Linux baseline.
func linuxRun(size int) (map[int]uint64, error) {
	app := sqliteComponent()
	d, err := ukernel.NewLinuxSQLite(app)
	if err != nil {
		return nil, err
	}
	return hostedSpeedtest(d.Sys, d.VFS, size)
}

// hostedSpeedtest opens the database through the provided (possibly
// IPC-wrapped) VFS client inside the app compartment and runs the whole
// schedule, returning per-query cycles.
func hostedSpeedtest(sys interface {
	RunAs(string, func(e *cubicle.Env)) error
}, vfs *vfscore.Client, size int) (map[int]uint64, error) {
	var ms []speedtest.Measurement
	var runErr error
	err := sys.RunAs("SQLITE", func(e *cubicle.Env) {
		vfs.InitBuffers(e, e.CubicleOf("RAMFS"))
		ioBuf := e.HeapAlloc(sqldb.PageSize)
		wid := e.WindowInit()
		e.WindowAdd(wid, ioBuf, sqldb.PageSize)
		e.WindowOpen(wid, e.CubicleOf(vfscore.Name))
		e.WindowOpen(wid, e.CubicleOf("RAMFS"))
		db, err := sqldb.Open(e, vfs, "/speedtest.db", ioBuf, DBCacheCap)
		if err != nil {
			runErr = err
			return
		}
		r := speedtest.New(db, speedtest.Config{Size: size})
		clock := e.M.Clock
		ms, runErr = r.RunAll(clock.Cycles)
	})
	if err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	return perQuery(ms), nil
}

// cubicleRun runs speedtest1 on a CubicleOS deployment with the given
// grouping and mode.
func cubicleRun(mode cubicle.Mode, groups map[string]string, size int) (map[int]uint64, error) {
	t, err := NewSQLiteTarget(mode, groups, size, UnikraftWorkScale)
	if err != nil {
		return nil, err
	}
	ms, err := t.RunAll()
	if err != nil {
		return nil, err
	}
	return perQuery(ms), nil
}

// Fig10aRow is one system's average speedtest1 slowdown against Linux.
type Fig10aRow struct {
	System   string
	Slowdown float64
}

// Fig10a compares Linux, Unikraft, Genode-3/4 (on Linux) and
// CubicleOS-3/4 — the left plot of Figure 10.
func Fig10a(size int) ([]Fig10aRow, error) {
	linux, err := linuxRun(size)
	if err != nil {
		return nil, err
	}
	rows := []Fig10aRow{{System: "Linux", Slowdown: 1.0}}
	uk, err := cubicleRun(cubicle.ModeUnikraft, groups3, size)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Fig10aRow{System: "Unikraft", Slowdown: meanSlowdown(uk, linux)})
	for _, comp := range []int{3, 4} {
		g, err := ukernelRun(ukernel.GenodeLinux, comp, size)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig10aRow{System: fmt.Sprintf("Genode-%d", comp), Slowdown: meanSlowdown(g, linux)})
	}
	c3, err := cubicleRun(cubicle.ModeFull, groups3, size)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Fig10aRow{System: "CubicleOS-3", Slowdown: meanSlowdown(c3, linux)})
	c4, err := cubicleRun(cubicle.ModeFull, groups4, size)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Fig10aRow{System: "CubicleOS-4", Slowdown: meanSlowdown(c4, linux)})
	return rows, nil
}

// Fig10bRow is one kernel's 4-vs-3-compartment slowdown.
type Fig10bRow struct {
	Kernel   string
	Slowdown float64
}

// Fig10b measures the cost of separating RAMFS into its own compartment
// on each kernel (right plot of Figure 10); the baseline is the same
// kernel with 3 compartments.
func Fig10b(size int) ([]Fig10bRow, error) {
	var rows []Fig10bRow
	for _, model := range ukernel.Models {
		t3, err := ukernelRun(model, 3, size)
		if err != nil {
			return nil, err
		}
		t4, err := ukernelRun(model, 4, size)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig10bRow{Kernel: model.Name, Slowdown: meanSlowdown(t4, t3)})
	}
	c3, err := cubicleRun(cubicle.ModeFull, groups3, size)
	if err != nil {
		return nil, err
	}
	c4, err := cubicleRun(cubicle.ModeFull, groups4, size)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Fig10bRow{Kernel: "CubicleOS", Slowdown: meanSlowdown(c4, c3)})
	return rows, nil
}

// MsFromCycles converts cycles to milliseconds at the paper's 2.2 GHz.
func MsFromCycles(c uint64) float64 {
	return float64(cycles.Duration(c).Microseconds()) / 1000
}

// SortedQueryIDs returns the Figure 6 x-axis (ascending).
func SortedQueryIDs() []int {
	ids := append([]int{}, speedtest.QueryIDs...)
	sort.Ints(ids)
	return ids
}
