package experiments

import (
	"testing"
)

// TestCalibrationReport prints the headline numbers of every figure so the
// cost model can be calibrated against the paper. Run with -v.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration report skipped in -short")
	}
	const size = 50

	rows, err := Fig6(size)
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	s := Summarise(rows)
	t.Logf("Fig6 group A slowdown %.2f (paper 1.8): tramp %.2f mpk %.2f acl %.2f", s.GroupASlowdown, s.ATramp, s.AMPK, s.AACL)
	t.Logf("Fig6 group B slowdown %.2f (paper 8.0): tramp %.2f mpk %.2f acl %.2f", s.GroupBSlowdown, s.BTramp, s.BMPK, s.BACL)
	for _, r := range rows {
		grp := "B"
		if r.GroupA {
			grp = "A"
		}
		t.Logf("  q%-4d %s uk=%-10d full=%-10d ratio=%.2f", r.ID, grp, r.Unikraft, r.Full, r.Ratio())
	}

	a, err := Fig10a(size)
	if err != nil {
		t.Fatalf("Fig10a: %v", err)
	}
	for _, r := range a {
		t.Logf("Fig10a %-12s %.2f", r.System, r.Slowdown)
	}
	b, err := Fig10b(size)
	if err != nil {
		t.Fatalf("Fig10b: %v", err)
	}
	for _, r := range b {
		t.Logf("Fig10b %-12s %.2f", r.Kernel, r.Slowdown)
	}

	f7, err := Fig7()
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	for _, r := range f7 {
		t.Logf("Fig7 %8d B: base %.2f ms, cubicle %.2f ms, ratio %.2f", r.Size, r.BaselineMs, r.CubicleOSMs, r.Ratio())
	}
}
