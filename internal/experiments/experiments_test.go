package experiments

import (
	"testing"

	"cubicleos/internal/cubicle"
)

// The shape tests assert the *qualitative* reproduction targets: who wins,
// by roughly what factor, and where crossovers fall. Absolute tolerances
// are wide — the cost model is calibrated, not measured — but orderings
// and factor ranges must hold. EXPERIMENTS.md records paper-vs-measured
// for the full-scale runs.

const shapeSize = 30 // reduced speedtest scale keeps the suite fast

func within(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s = %.2f, want within [%.1f, %.1f]", name, got, lo, hi)
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests skipped in -short")
	}
	rows, err := Fig6(shapeSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 31 {
		t.Fatalf("expected 31 queries, got %d", len(rows))
	}
	s := Summarise(rows)
	// Paper: group A ≈1.8×, group B ≈8×; every config ladder must be
	// monotone and group B must clearly exceed group A.
	within(t, "groupA slowdown", s.GroupASlowdown, 1.3, 2.8)
	within(t, "groupB slowdown", s.GroupBSlowdown, 4.5, 11)
	if s.GroupBSlowdown <= s.GroupASlowdown*1.8 {
		t.Errorf("group B (%.2f) not clearly above group A (%.2f)", s.GroupBSlowdown, s.GroupASlowdown)
	}
	// Trampolines are the cheap rung, MPK the expensive one (paper: +2%
	// vs +50% for A; +17% vs 4x for B).
	if s.AMPK <= s.ATramp {
		t.Errorf("MPK step (%.2f) not above trampoline step (%.2f) for group A", s.AMPK, s.ATramp)
	}
	if s.BMPK <= s.BTramp {
		t.Errorf("MPK step (%.2f) not above trampoline step (%.2f) for group B", s.BMPK, s.BTramp)
	}
	for _, r := range rows {
		if !(r.Unikraft <= r.NoMPK && r.NoMPK <= r.NoACL) {
			t.Errorf("q%d: ablation ladder not monotone: %d / %d / %d / %d",
				r.ID, r.Unikraft, r.NoMPK, r.NoACL, r.Full)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests skipped in -short")
	}
	rows, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	bySize := map[int]Fig7Row{}
	for _, r := range rows {
		bySize[r.Size] = r
	}
	// Paper: ~5-6 ms baseline flat for small files; overhead ~15% below
	// 64 KiB growing to ~2x for large transfers.
	small := bySize[1<<10]
	within(t, "1KiB baseline ms", small.BaselineMs, 4.0, 7.0)
	within(t, "1KiB ratio", small.Ratio(), 1.0, 1.25)
	mid := bySize[64<<10]
	within(t, "64KiB ratio", mid.Ratio(), 1.05, 1.5)
	big := bySize[8<<20]
	within(t, "8MiB ratio", big.Ratio(), 1.7, 3.0)
	// Latency grows with size; ratio grows monotonically past 64 KiB.
	prev := 0.0
	for _, size := range Fig7Sizes {
		r := bySize[size]
		if r.BaselineMs < prev {
			t.Errorf("baseline latency decreased at %d B", size)
		}
		prev = r.BaselineMs
	}
	if !(small.Ratio() < mid.Ratio() && mid.Ratio() < big.Ratio()) {
		t.Error("overhead ratio not increasing with transfer size")
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests skipped in -short")
	}
	a, err := Fig10a(shapeSize)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		for _, r := range a {
			if r.System == name {
				return r.Slowdown
			}
		}
		t.Fatalf("missing system %q", name)
		return 0
	}
	// Paper: Linux 1, Unikraft 2.8, Genode-3 1.4, Genode-4 29,
	// CubicleOS-3 4.1, CubicleOS-4 5.4.
	within(t, "Unikraft", get("Unikraft"), 2.0, 3.6)
	within(t, "Genode-3", get("Genode-3"), 1.1, 2.0)
	within(t, "Genode-4", get("Genode-4"), 18, 45)
	within(t, "CubicleOS-3", get("CubicleOS-3"), 3.0, 8.5)
	within(t, "CubicleOS-4", get("CubicleOS-4"), 4.0, 11)
	// Orderings the paper highlights.
	if !(get("Genode-3") < get("Unikraft")) {
		t.Error("Genode-3 should beat Unikraft (paper §6.5)")
	}
	if !(get("CubicleOS-4") < get("Genode-4")) {
		t.Error("CubicleOS-4 must be far cheaper than Genode-4 (headline result)")
	}
	ratio43 := get("CubicleOS-4") / get("CubicleOS-3")
	within(t, "CubicleOS 4/3", ratio43, 1.0, 1.6)

	b, err := Fig10b(shapeSize)
	if err != nil {
		t.Fatal(err)
	}
	getB := func(name string) float64 {
		for _, r := range b {
			if r.Kernel == name {
				return r.Slowdown
			}
		}
		t.Fatalf("missing kernel %q", name)
		return 0
	}
	// Paper: seL4 7.5, Fiasco.OC 4.5, NOVA 4.7, CubicleOS 1.4; the
	// artifact notes the microkernels are "always more than 4x" while
	// CubicleOS is "significantly smaller" (~1.3).
	within(t, "SeL4 4v3", getB("SeL4"), 5.5, 10)
	within(t, "Fiasco 4v3", getB("Fiasco.OC"), 3.5, 6)
	within(t, "NOVA 4v3", getB("NOVA"), 3.5, 6.5)
	within(t, "Genode/Linux 4v3", getB("Genode/Linux"), 10, 28)
	within(t, "CubicleOS 4v3", getB("CubicleOS"), 1.0, 1.6)
	for _, r := range b {
		if r.Kernel != "CubicleOS" && r.Slowdown < 4.0 {
			t.Errorf("%s separation slowdown %.2f below the paper's 'always more than 4x'", r.Kernel, r.Slowdown)
		}
	}
	if getB("CubicleOS")*2.5 > getB("Fiasco.OC") {
		t.Error("CubicleOS separation must be far cheaper than the cheapest microkernel")
	}
}

func TestFig5Graph(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests skipped in -short")
	}
	g, err := Fig5(4)
	if err != nil {
		t.Fatal(err)
	}
	// The Figure 5 topology: the edges the paper draws must exist.
	// The measurement window serves files read-only, so the write-side
	// RAMFS->ALLOC edge of the full graph does not appear here.
	for _, edge := range [][2]string{
		{"NGINX", "LWIP"}, {"NGINX", "VFSCORE"}, {"NGINX", "TIME"}, {"NGINX", "PLAT"},
		{"LWIP", "NETDEV"}, {"VFSCORE", "RAMFS"},
		{"NGINX", "ALLOC"}, {"LWIP", "ALLOC"},
	} {
		if g.Count(edge[0], edge[1]) == 0 {
			t.Errorf("missing edge %s -> %s", edge[0], edge[1])
		}
	}
	// ALLOC serves every component's allocations in this deployment: it
	// must receive a substantial share of all crossings (Figure 5 shows
	// it as one of the hottest cubicles).
	var allocIn, total uint64
	for _, e := range g.Edges {
		total += e.Count
		if e.To == "ALLOC" {
			allocIn += e.Count
		}
	}
	if allocIn*10 < total {
		t.Errorf("ALLOC receives only %d of %d calls; expected a hot allocator", allocIn, total)
	}
}

func TestFig8Graph(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests skipped in -short")
	}
	g, err := Fig8(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, edge := range [][2]string{
		{"SQLITE", "VFSCORE"}, {"VFSCORE", "RAMFS"}, {"SQLITE", "TIME"},
		{"SQLITE", "PLAT"}, {"SQLITE", "ALLOC"}, {"BOOT", "PLAT"},
	} {
		if g.Count(edge[0], edge[1]) == 0 {
			t.Errorf("missing edge %s -> %s", edge[0], edge[1])
		}
	}
	// SQLITE->VFSCORE must dominate SQLITE->ALLOC (each cubicle uses its
	// own allocator; ALLOC is coarse-grained only).
	if g.Count("SQLITE", "ALLOC") >= g.Count("SQLITE", "VFSCORE") {
		t.Error("ALLOC hotter than VFSCORE in the SQLite deployment")
	}
}

// TestSQLiteTargetModes checks the deployment helper across modes quickly.
func TestSQLiteTargetModes(t *testing.T) {
	for _, mode := range []cubicle.Mode{cubicle.ModeUnikraft, cubicle.ModeFull} {
		tgt, err := NewSQLiteTarget(mode, nil, 5, UnikraftWorkScale)
		if err != nil {
			t.Fatal(err)
		}
		if err := tgt.Setup(); err != nil {
			t.Fatal(err)
		}
		c, err := tgt.RunQuery(100)
		if err != nil {
			t.Fatal(err)
		}
		if c == 0 {
			t.Error("query consumed no cycles")
		}
	}
}

// TestGroupedDeploymentCheaper: CubicleOS-3 must cost less than
// CubicleOS-4 on the same workload.
func TestGroupedDeploymentCheaper(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests skipped in -short")
	}
	c3, err := cubicleRun(cubicle.ModeFull, groups3, 10)
	if err != nil {
		t.Fatal(err)
	}
	c4, err := cubicleRun(cubicle.ModeFull, groups4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m := meanSlowdown(c4, c3); m < 1.0 {
		t.Errorf("separating RAMFS made queries cheaper (%.2f)", m)
	}
}
