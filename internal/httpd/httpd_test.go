package httpd_test

import (
	"bytes"
	"strings"
	"testing"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/httpd"
	"cubicleos/internal/lwip"
	"cubicleos/internal/netdev"
	"cubicleos/internal/ramfs"
	"cubicleos/internal/siege"
	"cubicleos/internal/ualloc"
	"cubicleos/internal/uktime"
	"cubicleos/internal/vfscore"
)

func body(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + i%26)
	}
	return b
}

func TestServeSmallFile(t *testing.T) {
	for _, mode := range []cubicle.Mode{cubicle.ModeUnikraft, cubicle.ModeFull} {
		t.Run(mode.String(), func(t *testing.T) {
			tgt := siege.MustNewTarget(mode)
			want := body(1000)
			if err := tgt.PutFile("/index.html", want); err != nil {
				t.Fatal(err)
			}
			res, err := tgt.Fetch("/index.html")
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != 200 {
				t.Fatalf("status %d", res.Status)
			}
			if !bytes.Equal(res.Body, want) {
				t.Fatalf("body mismatch: got %d bytes, want %d", len(res.Body), len(want))
			}
			if res.Cycles == 0 && mode != cubicle.ModeUnikraft {
				t.Error("request consumed no cycles")
			}
			if tgt.Srv.Requests != 1 {
				t.Errorf("requests = %d", tgt.Srv.Requests)
			}
		})
	}
}

func TestServeLargeFileAcrossSendBuffer(t *testing.T) {
	tgt := siege.MustNewTarget(cubicle.ModeFull)
	want := body(2 << 20) // 2 MiB > 1 MiB LWIP send buffer
	if err := tgt.PutFile("/big.bin", want); err != nil {
		t.Fatal(err)
	}
	res, err := tgt.Fetch("/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 || !bytes.Equal(res.Body, want) {
		t.Fatalf("large transfer corrupt: status=%d len=%d", res.Status, len(res.Body))
	}
}

func TestNotFound(t *testing.T) {
	tgt := siege.MustNewTarget(cubicle.ModeFull)
	if err := tgt.PutFile("/exists", []byte("x")); err != nil {
		t.Fatal(err)
	}
	res, err := tgt.Fetch("/missing")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 404 {
		t.Fatalf("status %d, want 404", res.Status)
	}
}

func TestBadRequest(t *testing.T) {
	tgt := siege.MustNewTarget(cubicle.ModeFull)
	conn := tgt.Peer.Connect(80)
	step := tgt.Sys.M.MustResolve(cubicle.MonitorID, httpd.Name, "nginx_step")
	sent := false
	for i := 0; i < 100000 && !conn.FinRcvd; i++ {
		step.Call(tgt.Sys.Env)
		tgt.Peer.Pump()
		if conn.Established && !sent {
			conn.Send([]byte("POST /x HTTP/1.0\r\n\r\n"))
			sent = true
		}
	}
	if !strings.Contains(string(conn.Received()), "400 Bad Request") {
		t.Fatalf("response %q", string(conn.Received()))
	}
}

func TestSequentialRequests(t *testing.T) {
	tgt := siege.MustNewTarget(cubicle.ModeFull)
	for i, name := range []string{"/a", "/b", "/c"} {
		if err := tgt.PutFile(name, body(100*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	for i, name := range []string{"/a", "/b", "/c", "/a"} {
		res, err := tgt.Fetch(name)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if res.Status != 200 {
			t.Fatalf("request %d: status %d", i, res.Status)
		}
	}
	if tgt.Srv.Requests != 4 {
		t.Errorf("requests = %d", tgt.Srv.Requests)
	}
	// Access log went through PLAT.
	if !strings.Contains(tgt.Sys.Plat.ConsoleOutput(), "GET /a 200") {
		t.Errorf("access log missing: %q", tgt.Sys.Plat.ConsoleOutput())
	}
}

// TestFigure5Edges checks the deployment produces the call graph of
// Figure 5: NGINX talks to LWIP, VFSCORE, TIME and PLAT; LWIP to NETDEV;
// VFSCORE to RAMFS; and ALLOC is called by many cubicles.
func TestFigure5Edges(t *testing.T) {
	tgt := siege.MustNewTarget(cubicle.ModeFull)
	if err := tgt.PutFile("/f", body(64<<10)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := tgt.Fetch("/f"); err != nil {
			t.Fatal(err)
		}
	}
	sys := tgt.Sys
	id := func(name string) cubicle.ID { return sys.Cubs[name].ID }
	calls := sys.M.Stats.Calls
	for _, edge := range []struct {
		from, to string
	}{
		{httpd.Name, lwip.Name},
		{httpd.Name, vfscore.Name},
		{httpd.Name, uktime.Name},
		{httpd.Name, "PLAT"},
		{lwip.Name, netdev.Name},
		{vfscore.Name, ramfs.Name},
		{httpd.Name, "ALLOC"},
		{lwip.Name, "ALLOC"},
		{ramfs.Name, "ALLOC"},
	} {
		if calls[cubicle.Edge{From: id(edge.from), To: id(edge.to)}] == 0 {
			t.Errorf("missing Figure 5 edge %s -> %s", edge.from, edge.to)
		}
	}
	// ALLOC must be among the hottest callees, as in Figure 5.
	allocIn := uint64(0)
	for e, n := range calls {
		if e.To == id("ALLOC") {
			allocIn += n
		}
	}
	if allocIn < 10 {
		t.Errorf("ALLOC only received %d calls", allocIn)
	}
}

// TestModeOverheadNginx: CubicleOS must cost more cycles than baseline
// Unikraft for the same request — the Figure 7 overhead.
func TestModeOverheadNginx(t *testing.T) {
	cyclesFor := func(mode cubicle.Mode) uint64 {
		tgt := siege.MustNewTarget(mode)
		if err := tgt.PutFile("/f", body(256<<10)); err != nil {
			t.Fatal(err)
		}
		res, err := tgt.Fetch("/f")
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	base := cyclesFor(cubicle.ModeUnikraft)
	full := cyclesFor(cubicle.ModeFull)
	if full <= base {
		t.Fatalf("CubicleOS (%d cycles) not slower than Unikraft (%d)", full, base)
	}
	ratio := float64(full) / float64(base)
	if ratio < 1.1 || ratio > 20 {
		t.Errorf("overhead ratio %.2f out of plausible range", ratio)
	}
	_ = ualloc.Name
}

// TestConcurrentConnections interleaves several connections through the
// server's per-connection state machines.
func TestConcurrentConnections(t *testing.T) {
	tgt := siege.MustNewTarget(cubicle.ModeFull)
	sizes := map[string]int{"/a": 2 << 10, "/b": 100 << 10, "/c": 700}
	var paths []string
	for name, n := range sizes {
		if err := tgt.PutFile(name, body(n)); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, name, name) // two connections per file
	}
	results, err := tgt.FetchConcurrent(paths)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		want := sizes[paths[i]]
		if res.Status != 200 || len(res.Body) != want {
			t.Errorf("request %d (%s): status %d, %d bytes (want %d)", i, paths[i], res.Status, len(res.Body), want)
		}
		if !bytes.Equal(res.Body, body(want)) {
			t.Errorf("request %d (%s): body corrupted under concurrency", i, paths[i])
		}
	}
	if tgt.Srv.Requests != uint64(len(paths)) {
		t.Errorf("served %d requests, want %d", tgt.Srv.Requests, len(paths))
	}
}

func TestHeadRequest(t *testing.T) {
	tgt := siege.MustNewTarget(cubicle.ModeFull)
	if err := tgt.PutFile("/doc", body(5000)); err != nil {
		t.Fatal(err)
	}
	conn := tgt.Peer.Connect(80)
	step := tgt.Sys.M.MustResolve(cubicle.MonitorID, httpd.Name, "nginx_step")
	sent := false
	for i := 0; i < 100000 && !conn.FinRcvd; i++ {
		step.Call(tgt.Sys.Env)
		tgt.Peer.Pump()
		if conn.Established && !sent {
			conn.Send([]byte("HEAD /doc HTTP/1.0\r\n\r\n"))
			sent = true
		}
	}
	raw := string(conn.Received())
	head, rest, _ := strings.Cut(raw, "\r\n\r\n")
	if !strings.Contains(head, "200 OK") || !strings.Contains(head, "Content-Length: 5000") {
		t.Fatalf("HEAD response head: %q", head)
	}
	if rest != "" {
		t.Fatalf("HEAD response carried a %d-byte body", len(rest))
	}
}
