// Package httpd is the NGINX stand-in of the paper's I/O-intensive
// evaluation (§6.3): an event-driven HTTP/1.0 static-file server running
// entirely on the library OS stack. Its deployment reproduces the eight
// isolated cubicles of Figure 5 — NGINX, LWIP, NETDEV, VFSCORE, RAMFS,
// PLAT, ALLOC and TIME — with newlibc and the random device shared.
//
// Per request the server crosses into LWIP for socket I/O, VFSCORE/RAMFS
// for the file, TIME for the log timestamp and PLAT for the access log;
// in the NGINX deployment every buffer comes from ALLOC, which is what
// makes ALLOC the hottest cubicle in Figure 5.
package httpd

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/lwip"
	"cubicleos/internal/plat"
	"cubicleos/internal/ualloc"
	"cubicleos/internal/uktime"
	"cubicleos/internal/vfscore"
	"cubicleos/internal/vm"
)

// Name of the component in deployments.
const Name = "NGINX"

// Buffer sizes.
const (
	reqBufSize  = 4096
	ioBufSize   = 32 << 10
	logBufSize  = 512
	shedBufSize = 256
)

// parseWork models request-line parsing and header handling.
const parseWork = 900

// defaultConnRequests caps responses served on one keep-alive connection
// when Governance leaves MaxConnRequests unset (nginx's
// keepalive_requests default): long-lived connections must still cycle so
// per-connection state cannot accrete forever.
const defaultConnRequests = 100

// connState is the per-connection state machine.
type connState int

const (
	stReadRequest connState = iota
	stServe
	stDone
)

// conn is one HTTP connection.
type conn struct {
	fd       uint64
	state    connState
	req      []byte // request bytes accumulated so far (bookkeeping copy)
	reqBuf   vm.Addr
	ioBuf    vm.Addr
	fileFD   uint64
	size     uint64
	sent     uint64 // body bytes handed to LWIP
	pending  uint64 // bytes in ioBuf not yet accepted by LWIP
	pendOff  uint64
	hdrDone  bool
	headOnly bool // HEAD request: headers only
	path     string
	status   int
	wrote    uint64 // response bytes accepted by LWIP (headers included)
	// deadline is the absolute virtual-cycle instant this connection's
	// downstream work expires (0 = none); expired marks a connection that
	// already missed it, so the 503 answering the miss is not itself
	// aborted by the stale deadline.
	deadline uint64
	expired  bool
	// http11 records the request's protocol version; keepAlive whether
	// the connection persists after the current response (HTTP/1.1
	// default, overridable per request via the Connection header);
	// served counts responses completed on this connection so the
	// requests-per-conn cap can force a close.
	http11    bool
	keepAlive bool
	served    int
}

// proto is the response protocol version, echoing the request's.
func (c *conn) proto() string {
	if c.http11 {
		return "HTTP/1.1"
	}
	return "HTTP/1.0"
}

// connHeader is the Connection response header for the current request —
// empty on the legacy HTTP/1.0 close path so pre-keep-alive responses
// stay byte-identical (the golden figures depend on it).
func (c *conn) connHeader() string {
	if c.keepAlive {
		return "Connection: keep-alive\r\n"
	}
	if c.http11 {
		return "Connection: close\r\n"
	}
	return ""
}

// Governance configures the server's overload protection. The zero value
// disables every mechanism, which is the ungoverned seed behaviour.
type Governance struct {
	// MaxConns is the admission limit on concurrent connections; beyond
	// it new connections are shed with 429 (0 = unbounded).
	MaxConns int
	// RequestDeadline is the virtual-cycle budget attached to each
	// connection's downstream crossings per step; expired work is
	// abandoned via DeadlineFault and answered with 503 (0 = none).
	RequestDeadline uint64
	// RetryAfter is the whole-second hint advertised in the Retry-After
	// header of shed responses.
	RetryAfter uint64
	// Retry bounds re-attempts of transient allocation faults before a
	// connection is shed (zero value = single attempt, no backoff).
	Retry cubicle.RetryPolicy
	// MaxConnRequests caps responses served over one keep-alive
	// connection before the server answers Connection: close and recycles
	// it (0 = the defaultConnRequests default). HTTP/1.0 connections
	// without keep-alive are unaffected — they close after one response.
	MaxConnRequests int
}

// Server is the NGINX component state.
type Server struct {
	lwip  *lwip.Client
	vfs   *vfscore.Client
	time  *uktime.Client
	plat  *plat.Client
	alloc ualloc.Allocator

	lwipID, vfsID, ramfsID, platID cubicle.ID

	port  uint16
	lfd   uint64
	conns map[uint64]*conn
	// order is scratch for stepping connections in fd order: Go map
	// iteration is randomized per run, and stepping in a varying order
	// varies the virtual-time cost accounting — the determinism gate on
	// the live dashboard caught exactly that.
	order   []uint64
	logBuf  vm.Addr
	shedBuf vm.Addr
	gov     Governance
	// metricsSource, when set, serves GET /metrics with its OpenMetrics
	// body — the monitor's own counters flowing out through the server's
	// isolation boundaries like any other response.
	metricsSource func() []byte

	// Requests counts completed requests.
	Requests uint64
	// Errors503 counts connections degraded with 503 (or truncated)
	// because a handler crossing hit a contained fault.
	Errors503 uint64
	// Shed429 counts connections refused at admission (MaxConns).
	Shed429 uint64
	// Shed503 counts connections shed for transient resource exhaustion
	// (quota or deadline) rather than a component fault.
	Shed503 uint64
	inited  bool
}

// New creates the server; deployment wiring must call SetDeps.
func New(port uint16) *Server {
	return &Server{port: port, conns: make(map[uint64]*conn)}
}

// SetGovernance installs overload-protection limits. Call before the
// first step; the zero value switches everything off.
func (s *Server) SetGovernance(g Governance) { s.gov = g }

// Conns returns the number of live connections (admission-control gauge).
func (s *Server) Conns() int { return len(s.conns) }

// SetMetricsSource installs the body generator behind GET /metrics
// (typically Monitor.OpenMetricsBody). The body is regenerated per
// request, truncated to the connection's I/O buffer if oversized.
func (s *Server) SetMetricsSource(fn func() []byte) { s.metricsSource = fn }

// SetDeps wires the server's clients and allocator strategy, plus the
// cubicle IDs it opens windows for.
func (s *Server) SetDeps(lw *lwip.Client, vfs *vfscore.Client, tm *uktime.Client,
	pl *plat.Client, alloc ualloc.Allocator, lwipID, vfsID, ramfsID, platID cubicle.ID) {
	s.lwip, s.vfs, s.time, s.plat, s.alloc = lw, vfs, tm, pl, alloc
	s.lwipID, s.vfsID, s.ramfsID, s.platID = lwipID, vfsID, ramfsID, platID
}

// initServer opens the listening socket and the shared log buffer.
func (s *Server) initServer(e *cubicle.Env) uint64 {
	if s.inited {
		return 0
	}
	s.vfs.InitBuffers(e, s.ramfsID)
	s.logBuf = s.alloc.Malloc(e, logBufSize)
	s.alloc.Share(e, s.logBuf, logBufSize, s.platID)
	s.lfd = s.lwip.Socket(e)
	if errno := s.lwip.Bind(e, s.lfd, s.port); errno != lwip.EOK {
		return errno
	}
	if errno := s.lwip.Listen(e, s.lfd, 64); errno != lwip.EOK {
		return errno
	}
	s.inited = true
	return 0
}

// newConn sets up per-connection buffers and their windows. If a later
// allocation faults, the earlier ones are released before the fault
// re-raises, so a shed connection leaves no arena residue behind.
func (s *Server) newConn(e *cubicle.Env, fd uint64) *conn {
	c := &conn{fd: fd, status: 200}
	c.reqBuf = s.alloc.Malloc(e, reqBufSize)
	if cf := cubicle.CatchContained(func() {
		s.alloc.Share(e, c.reqBuf, reqBufSize, s.lwipID)
		c.ioBuf = s.alloc.Malloc(e, ioBufSize)
		s.alloc.Share(e, c.ioBuf, ioBufSize, s.lwipID)
		s.alloc.Share(e, c.ioBuf, ioBufSize, s.vfsID)
		s.alloc.Share(e, c.ioBuf, ioBufSize, s.ramfsID)
	}); cf != nil {
		cubicle.CatchContained(func() {
			s.alloc.Free(e, c.reqBuf)
			if c.ioBuf != 0 {
				s.alloc.Free(e, c.ioBuf)
			}
		})
		panic(cf)
	}
	return c
}

// closeConn tears down a connection and releases its buffers.
func (s *Server) closeConn(e *cubicle.Env, c *conn) {
	if c.fileFD != 0 {
		s.vfs.Close(e, c.fileFD)
		c.fileFD = 0
	}
	s.lwip.Close(e, c.fd)
	s.alloc.Free(e, c.reqBuf)
	s.alloc.Free(e, c.ioBuf)
	delete(s.conns, c.fd)
}

// step drives the server: polls the stack, accepts connections, advances
// every connection's state machine. Returns an activity count.
//
// Every crossing out of NGINX is wrapped in CatchContained: a fault in a
// dependency cubicle degrades the affected connection (503 or truncation)
// instead of crashing the server — the paper's isolation claim turned
// into availability.
func (s *Server) step(e *cubicle.Env) uint64 {
	var activity uint64
	if cf := cubicle.CatchContained(func() {
		activity = s.lwip.Poll(e)
		for {
			fd, errno := s.lwip.Accept(e, s.lfd)
			if errno != lwip.EOK {
				break
			}
			if s.gov.MaxConns > 0 && len(s.conns) >= s.gov.MaxConns {
				// Admission control: refuse at the door while the
				// house is full instead of queueing unbounded work.
				s.shed(e, fd, 429, "conns")
				activity++
				continue
			}
			var c *conn
			if cf := cubicle.RetryContained(e, s.gov.Retry, func() {
				c = s.newConn(e, fd)
			}); cf != nil {
				if !cubicle.IsTransient(cf) {
					panic(cf) // real component fault: outer catch backs off
				}
				// Allocation quota exhausted even after backoff: shed
				// this connection rather than the whole server.
				s.shed(e, fd, 503, "quota")
				activity++
				continue
			}
			if s.gov.RequestDeadline != 0 {
				c.deadline = e.Now() + s.gov.RequestDeadline
			}
			s.conns[fd] = c
			activity++
		}
	}); cf != nil {
		// The network stack itself is unavailable this tick; existing
		// connections cannot make progress either, so try again later.
		return activity
	}
	s.order = s.order[:0]
	for fd := range s.conns {
		s.order = append(s.order, fd)
	}
	sort.Slice(s.order, func(i, j int) bool { return s.order[i] < s.order[j] })
	for _, fd := range s.order {
		c, ok := s.conns[fd]
		if !ok {
			continue
		}
		armed := c.deadline != 0 && !c.expired
		if armed {
			e.SetDeadline(c.deadline)
		}
		cf := cubicle.CatchContained(func() {
			activity += s.advance(e, c)
		})
		if armed {
			e.ClearDeadline()
		}
		if cf != nil {
			s.fail503(e, c, cf)
			activity++
		}
	}
	return activity
}

// shed answers a connection the server refuses to serve — 429 at the
// admission limit, 503 on resource exhaustion — with a Retry-After hint,
// then closes it. The response goes through a persistent single shed
// buffer so refusing load never allocates per-connection memory.
func (s *Server) shed(e *cubicle.Env, fd uint64, status uint64, reason string) {
	if s.shedBuf == 0 {
		s.shedBuf = s.alloc.Malloc(e, shedBufSize)
		s.alloc.Share(e, s.shedBuf, shedBufSize, s.lwipID)
	}
	text := "429 Too Many Requests"
	if status == 503 {
		text = "503 Service Unavailable"
		s.Shed503++
	} else {
		s.Shed429++
	}
	body := "overloaded\n"
	resp := fmt.Sprintf("HTTP/1.0 %s\r\nServer: cubicle-nginx\r\nRetry-After: %d\r\nContent-Length: %d\r\n\r\n%s",
		text, s.gov.RetryAfter, len(body), body)
	e.Write(s.shedBuf, []byte(resp))
	e.NoteShed(reason, status)
	// Best effort: under wire backpressure the refusal itself may drop,
	// and the close still frees the socket.
	s.lwip.Send(e, fd, s.shedBuf, uint64(len(resp)))
	s.lwip.Close(e, fd)
}

// fail503 degrades a connection whose handler crossed into a faulted
// cubicle. If no response bytes reached the wire yet, a 503 is staged so
// the client gets an answer; once part of a 200 is out, all the server
// can do is close early (HTTP/1.0 signals truncation by the close).
// Transient causes (quota, deadline) count as sheds, not component errors.
func (s *Server) fail503(e *cubicle.Env, c *conn, cf *cubicle.ContainedFault) {
	s.Errors503++
	// A degraded connection never persists: whatever request framing the
	// fault interrupted is lost.
	c.keepAlive = false
	if cf != nil && cubicle.IsTransient(cf) {
		s.Shed503++
		reason := "quota"
		if _, ok := cf.Cause.(*cubicle.DeadlineFault); ok {
			reason = "deadline"
			// The deadline already did its job; answering the miss with
			// a 503 must not be aborted by the same stale deadline.
			c.expired = true
		}
		e.NoteShed(reason, 503)
	}
	if c.fileFD != 0 {
		fd := c.fileFD
		c.fileFD = 0
		// Best effort: VFSCORE may itself be the faulted cubicle.
		cubicle.CatchContained(func() { s.vfs.Close(e, fd) })
	}
	if c.wrote > 0 {
		if cf := cubicle.CatchContained(func() { s.closeConn(e, c) }); cf != nil {
			delete(s.conns, c.fd)
		}
		return
	}
	c.status = 503
	if cf := cubicle.CatchContained(func() {
		s.startResponse(e, c, "503 Service Unavailable", []byte("service unavailable\n"))
	}); cf != nil {
		if cf := cubicle.CatchContained(func() { s.closeConn(e, c) }); cf != nil {
			delete(s.conns, c.fd)
		}
	}
}

// advance progresses one connection.
func (s *Server) advance(e *cubicle.Env, c *conn) uint64 {
	switch c.state {
	case stReadRequest:
		// A pipelined request may already sit complete in the bookkeeping
		// buffer from the previous keep-alive exchange; serve it before
		// asking the stack for more bytes.
		if bytes.Contains(c.req, []byte("\r\n\r\n")) {
			s.parseRequest(e, c)
			return 1
		}
		n, errno := s.lwip.Recv(e, c.fd, c.reqBuf, reqBufSize)
		if errno == lwip.EAGAIN {
			return 0
		}
		if errno != lwip.EOK {
			s.closeConn(e, c)
			return 1
		}
		if n == 0 { // client closed before a full request
			if len(c.req) == 0 {
				s.closeConn(e, c)
				return 1
			}
			return 0
		}
		// Append straight from the zero-copy view of the receive buffer —
		// no intermediate []byte per read, no string copy for the scan.
		e.View(c.reqBuf, n, func(_ uint64, chunk []byte) {
			c.req = append(c.req, chunk...)
		})
		if idx := bytes.Index(c.req, []byte("\r\n\r\n")); idx >= 0 {
			s.parseRequest(e, c)
			return 1
		}
		return 1
	case stServe:
		return s.serve(e, c)
	}
	return 0
}

// connDirective extracts the request's Connection header value,
// lower-cased, or "" when absent.
func connDirective(head string) string {
	for _, line := range strings.Split(head, "\r\n")[1:] {
		k, v, ok := strings.Cut(line, ":")
		if ok && strings.EqualFold(strings.TrimSpace(k), "Connection") {
			return strings.ToLower(strings.TrimSpace(v))
		}
	}
	return ""
}

// parseRequest handles the request line and opens the file. It consumes
// exactly one request head from the bookkeeping buffer; pipelined bytes
// beyond the terminator stay queued for the next keep-alive round.
func (s *Server) parseRequest(e *cubicle.Env, c *conn) {
	e.TraceMark("http.request.parsed")
	e.Work(parseWork)
	idx := bytes.Index(c.req, []byte("\r\n\r\n"))
	head := string(c.req[:idx])
	c.req = c.req[idx+4:]
	line, _, _ := strings.Cut(head, "\r\n")
	fields := strings.Fields(line)
	c.http11 = len(fields) >= 3 && fields[2] == "HTTP/1.1"
	switch connDirective(head) {
	case "close":
		c.keepAlive = false
	case "keep-alive":
		c.keepAlive = true
	default:
		c.keepAlive = c.http11
	}
	maxReq := s.gov.MaxConnRequests
	if maxReq == 0 {
		maxReq = defaultConnRequests
	}
	if c.served+1 >= maxReq {
		c.keepAlive = false
	}
	if s.gov.RequestDeadline != 0 && c.deadline == 0 {
		// Recycled keep-alive connections get a fresh per-request budget;
		// the first request keeps the one armed at accept.
		c.deadline = e.Now() + s.gov.RequestDeadline
	}
	if len(fields) < 2 || (fields[0] != "GET" && fields[0] != "HEAD") {
		// Framing past a malformed request is unknowable: answer and close.
		c.status = 400
		c.keepAlive = false
		s.startResponse(e, c, "400 Bad Request", []byte("bad request\n"))
		return
	}
	c.headOnly = fields[0] == "HEAD"
	c.path = fields[1]
	if c.path == "/metrics" && s.metricsSource != nil {
		s.serveMetrics(e, c)
		return
	}
	fd, errno := s.vfs.Open(e, c.path, vfscore.ORdonly)
	if errno != vfscore.EOK {
		c.status = 404
		s.startResponse(e, c, "404 Not Found", []byte("not found\n"))
		return
	}
	size, errno := s.vfs.FStat(e, fd)
	if errno != vfscore.EOK {
		s.vfs.Close(e, fd)
		c.status = 500
		s.startResponse(e, c, "500 Internal Server Error", []byte("error\n"))
		return
	}
	c.fileFD = fd
	c.size = size
	hdr := fmt.Sprintf("%s 200 OK\r\nServer: cubicle-nginx\r\n%sContent-Length: %d\r\n\r\n", c.proto(), c.connHeader(), size)
	e.Write(c.ioBuf, []byte(hdr))
	c.pending = uint64(len(hdr))
	c.pendOff = 0
	c.hdrDone = false
	if c.headOnly {
		// HEAD: announce the size but send no body.
		s.vfs.Close(e, fd)
		c.fileFD = 0
		c.size = 0
	}
	c.state = stServe
}

// serveMetrics stages the OpenMetrics exposition as an inline response
// body: no file is opened, but the bytes still travel the normal path —
// checked copy into the connection's I/O buffer, LWIP send, access log.
func (s *Server) serveMetrics(e *cubicle.Env, c *conn) {
	body := s.metricsSource()
	hdr := fmt.Sprintf("%s 200 OK\r\nServer: cubicle-nginx\r\nContent-Type: application/openmetrics-text; version=1.0.0\r\n%sContent-Length: %d\r\n\r\n", c.proto(), c.connHeader(), len(body))
	if uint64(len(hdr)+len(body)) > ioBufSize {
		body = body[:ioBufSize-uint64(len(hdr))]
	}
	e.Write(c.ioBuf, append([]byte(hdr), body...))
	c.pending = uint64(len(hdr) + len(body))
	c.pendOff = 0
	c.size = 0
	c.sent = 0
	if c.headOnly {
		c.pending = uint64(len(hdr))
	}
	c.state = stServe
}

// startResponse stages a small error response.
func (s *Server) startResponse(e *cubicle.Env, c *conn, status string, body []byte) {
	hdr := fmt.Sprintf("%s %s\r\nServer: cubicle-nginx\r\n%sContent-Length: %d\r\n\r\n", c.proto(), status, c.connHeader(), len(body))
	e.Write(c.ioBuf, append([]byte(hdr), body...))
	c.pending = uint64(len(hdr) + len(body))
	c.pendOff = 0
	c.size = 0
	c.sent = 0
	c.state = stServe
}

// serve pushes pending bytes and file chunks into LWIP until the response
// is complete or the stack applies backpressure.
func (s *Server) serve(e *cubicle.Env, c *conn) uint64 {
	activity := uint64(0)
	for {
		if c.pending > 0 {
			n, errno := s.lwip.Send(e, c.fd, c.ioBuf.Add(c.pendOff), c.pending)
			if errno == lwip.EAGAIN {
				return activity
			}
			if errno != lwip.EOK {
				s.closeConn(e, c)
				return activity + 1
			}
			c.pending -= n
			c.pendOff += n
			c.wrote += n
			activity++
			if c.pending > 0 {
				return activity // backpressure: partial accept
			}
			continue
		}
		if c.fileFD == 0 || c.sent >= c.size {
			s.finish(e, c)
			return activity + 1
		}
		chunk := uint64(ioBufSize)
		if chunk > c.size-c.sent {
			chunk = c.size - c.sent
		}
		n, errno := s.vfs.PRead(e, c.fileFD, c.ioBuf, chunk, c.sent)
		if errno != vfscore.EOK || n == 0 {
			s.closeConn(e, c)
			return activity + 1
		}
		c.sent += n
		c.pending = n
		c.pendOff = 0
		activity++
	}
}

// finish logs the request, then closes the connection or — on a
// keep-alive exchange — recycles it for the next request.
func (s *Server) finish(e *cubicle.Env, c *conn) {
	ts := s.time.WallNs(e)
	line := fmt.Sprintf("%d GET %s %d %d\n", ts/1_000_000_000, c.path, c.status, c.size)
	if uint64(len(line)) > logBufSize {
		line = line[:logBufSize]
	}
	e.Write(s.logBuf, []byte(line))
	s.plat.ConsoleWrite(e, s.logBuf, uint64(len(line)))
	s.Requests++
	e.TraceMark("http.request.done")
	if c.keepAlive {
		s.resetConn(e, c)
	} else {
		s.closeConn(e, c)
	}
}

// resetConn recycles a keep-alive connection for its next request:
// per-request state clears, the connection-scoped buffers and their
// windows stay mapped. Pipelined bytes already received remain queued in
// c.req and are parsed on the next step without another Recv.
func (s *Server) resetConn(e *cubicle.Env, c *conn) {
	if c.fileFD != 0 {
		s.vfs.Close(e, c.fileFD)
		c.fileFD = 0
	}
	c.served++
	c.state = stReadRequest
	c.size, c.sent, c.pending, c.pendOff = 0, 0, 0, 0
	c.hdrDone = false
	c.headOnly = false
	c.path = ""
	c.status = 200
	c.wrote = 0
	c.deadline = 0
	c.expired = false
}

// Provision writes a static file into the file system through the normal
// VFS path — the harness equivalent of populating the server's RAMFS root
// before a benchmark run. Must run with the NGINX cubicle's privileges.
func (s *Server) Provision(e *cubicle.Env, path string, data []byte) uint64 {
	if !s.inited {
		if errno := s.initServer(e); errno != 0 {
			return errno
		}
	}
	fd, errno := s.vfs.Open(e, path, vfscore.OCreat|vfscore.OWronly|vfscore.OTrunc)
	if errno != vfscore.EOK {
		return errno
	}
	defer s.vfs.Close(e, fd)
	buf := s.alloc.Malloc(e, ioBufSize)
	s.alloc.Share(e, buf, ioBufSize, s.vfsID)
	s.alloc.Share(e, buf, ioBufSize, s.ramfsID)
	defer s.alloc.Free(e, buf)
	for off := 0; off < len(data); off += ioBufSize {
		end := off + ioBufSize
		if end > len(data) {
			end = len(data)
		}
		e.Write(buf, data[off:end])
		if n, errno := s.vfs.PWrite(e, fd, buf, uint64(end-off), uint64(off)); errno != vfscore.EOK || n != uint64(end-off) {
			return errno
		}
	}
	return 0
}

// Snapshot serializes the server's idle-point state: the listening
// socket, persistent buffer addresses and the request counters. A server
// with connections in flight vetoes the round — per-connection buffers,
// file descriptors and shared windows cannot be re-established from a
// byte image, and HTTP/1.0 connections drain quickly anyway.
func (s *Server) Snapshot(sc *cubicle.SnapCtx) ([]byte, error) {
	if len(s.conns) > 0 {
		return nil, fmt.Errorf("httpd: %d connections in flight", len(s.conns))
	}
	b := make([]byte, 0, 1+7*8)
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	if s.inited {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	u64(s.lfd)
	u64(uint64(s.logBuf))
	u64(uint64(s.shedBuf))
	u64(s.Requests)
	u64(s.Errors503)
	u64(s.Shed429)
	u64(s.Shed503)
	return b, nil
}

// Restore rebuilds the server from a Snapshot blob. The buffer addresses
// stay valid because either they live in the server's own restored heap
// (Local allocator) or in ALLOC's arena, which survives this cubicle's
// restart (Remote allocator); the listening socket likewise persists in
// LWIP's table across an NGINX-only restart.
func (s *Server) Restore(sc *cubicle.SnapCtx, blob []byte) error {
	if len(blob) != 1+7*8 {
		return fmt.Errorf("httpd: snapshot blob is %d bytes, want %d", len(blob), 1+7*8)
	}
	u64 := func(off int) uint64 { return binary.LittleEndian.Uint64(blob[off:]) }
	s.inited = blob[0] == 1
	s.lfd = u64(1)
	s.logBuf = vm.Addr(u64(9))
	s.shedBuf = vm.Addr(u64(17))
	s.Requests = u64(25)
	s.Errors503 = u64(33)
	s.Shed429 = u64(41)
	s.Shed503 = u64(49)
	s.conns = make(map[uint64]*conn)
	s.order = s.order[:0]
	return nil
}

// Component returns the NGINX component for the builder.
func (s *Server) Component() *cubicle.Component {
	return &cubicle.Component{
		Name: Name,
		Kind: cubicle.KindIsolated,
		Exports: []cubicle.ExportDecl{
			{Name: "nginx_init", Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				return []uint64{s.initServer(e)}
			}},
			{Name: "nginx_step", Fn: func(e *cubicle.Env, a []uint64) []uint64 {
				return []uint64{s.step(e)}
			}},
		},
		Snapshot: s.Snapshot,
		Restore:  s.Restore,
	}
}
