package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"cubicleos/internal/cycles"
)

// cyclesToUs converts virtual cycles to microseconds at the evaluation
// machine's 2.20 GHz — the timestamp unit of the Chrome trace format.
func cyclesToUs(c uint64) float64 {
	return float64(c) / (float64(cycles.FrequencyHz) / 1e6)
}

// countsAll sums the per-shard streaming counters into one view.
func (t *Tracer) countsAll() (counts, weights [numKinds]uint64) {
	for _, s := range t.shards {
		for k := 0; k < int(numKinds); k++ {
			counts[k] += s.counts[k]
			weights[k] += s.weights[k]
		}
	}
	return counts, weights
}

// --- Chrome trace_event JSON -------------------------------------------------

// chromeEvent is one entry of the Chrome trace_event format (the JSON
// Perfetto and chrome://tracing load).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// chromeTid maps an event to its Chrome track. Monitor-context events
// (thread -1) share one synthetic track. On a single-core machine worker
// tracks are the thread IDs, as before sharding; on a multi-core machine
// each core gets its own track band — Event.Core picks the band, the
// thread the lane within it — so Perfetto renders per-core swimlanes.
const monitorTid = 99

func (t *Tracer) chromeTid(ev Event) int {
	if ev.Thread < 0 {
		return monitorTid
	}
	if len(t.shards) > 1 {
		return 1000*(int(ev.Core)+1) + int(ev.Thread)
	}
	return int(ev.Thread)
}

// ChromeTrace renders the merged ring contents as a Chrome trace_event
// JSON document. Call spans become B/E duration events on the recording
// thread's track; faults become complete ("X") events spanning the
// handler's cycle cost; everything else becomes thread-scoped instants.
func (t *Tracer) ChromeTrace() ([]byte, error) {
	events := t.Events()
	out := chromeTrace{
		DisplayTimeUnit: "ns",
		OtherData: map[string]any{
			"clock":           "virtual cycles at 2.20 GHz",
			"cores":           len(t.shards),
			"events_recorded": t.Recorded(),
			"events_dropped":  t.Dropped(),
		},
	}
	// Name the process and the threads that appear.
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "CubicleOS (simulated machine)"},
	})
	seenTids := map[int]bool{}
	for _, ev := range events {
		id := t.chromeTid(ev)
		if seenTids[id] {
			continue
		}
		seenTids[id] = true
		name := "thread " + itoa(int(ev.Thread))
		if id == monitorTid {
			name = "monitor context"
		} else if len(t.shards) > 1 {
			name = "core " + itoa(int(ev.Core)) + " thread " + itoa(int(ev.Thread))
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: id,
			Args: map[string]any{"name": name},
		})
	}
	for _, ev := range events {
		ce := chromeEvent{Pid: 1, Tid: t.chromeTid(ev), Ts: cyclesToUs(ev.Cycle), Cat: ev.Kind.String()}
		switch ev.Kind {
		case EvCallEnter:
			ce.Ph = "B"
			ce.Name = ev.Name
			ce.Args = map[string]any{
				"from": t.Name(int(ev.Cubicle)), "to": t.Name(int(ev.Other)),
				"stack_bytes": ev.Arg,
			}
		case EvCallExit:
			ce.Ph = "E"
			ce.Name = ev.Name
		case EvFault:
			ce.Ph = "X"
			ce.Name = "fault"
			ce.Ts = cyclesToUs(ev.Cycle - ev.Cost)
			d := cyclesToUs(ev.Cost)
			ce.Dur = &d
			ce.Args = map[string]any{
				"cubicle": t.Name(int(ev.Cubicle)), "owner": t.Name(int(ev.Other)),
				"addr": fmt.Sprintf("%#x", ev.Arg),
			}
		default:
			ce.Ph = "i"
			ce.S = "t"
			ce.Name = ev.Kind.String()
			if ev.Name != "" {
				ce.Name = ev.Kind.String() + ":" + ev.Name
			}
			ce.Args = map[string]any{
				"cubicle": t.Name(int(ev.Cubicle)), "arg": ev.Arg,
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	return json.MarshalIndent(out, "", " ")
}

// WriteChromeTrace writes the Chrome trace JSON to w.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	b, err := t.ChromeTrace()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// --- Prometheus text exposition ----------------------------------------------

// WritePrometheus writes the streaming counters, per-edge call-latency
// histograms and the per-cubicle cycle profile in the Prometheus text
// exposition format, merged over shards.
func (t *Tracer) WritePrometheus(w io.Writer) error {
	var err error
	p := func(format string, a ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, a...)
		}
	}
	counts, weights := t.countsAll()

	p("# HELP cubicleos_events_total Architectural events observed on the simulated machine.\n")
	p("# TYPE cubicleos_events_total counter\n")
	for k := Kind(0); k < numKinds; k++ {
		p("cubicleos_events_total{kind=%q} %d\n", k.String(), counts[k])
	}

	p("# HELP cubicleos_event_bytes_total Byte weights carried by weighted events.\n")
	p("# TYPE cubicleos_event_bytes_total counter\n")
	p("cubicleos_event_bytes_total{kind=\"stack_args\"} %d\n", weights[EvCallEnter])
	p("cubicleos_event_bytes_total{kind=\"bulk_copy\"} %d\n", weights[EvCopy])
	p("cubicleos_event_bytes_total{kind=\"ipc_payload\"} %d\n", weights[EvIPC])
	p("cubicleos_window_search_steps_total %d\n", weights[EvWindowSearch])

	p("# HELP cubicleos_call_cycles Cross-cubicle call latency in virtual cycles, per directed edge.\n")
	p("# TYPE cubicleos_call_cycles histogram\n")
	type edgeRow struct {
		e Edge
		h *Hist
	}
	hists := t.edgeHistsMerged()
	rows := make([]edgeRow, 0, len(hists))
	for e, h := range hists {
		rows = append(rows, edgeRow{e, h})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].e.From != rows[j].e.From {
			return rows[i].e.From < rows[j].e.From
		}
		return rows[i].e.To < rows[j].e.To
	})
	for _, r := range rows {
		from, to := t.Name(int(r.e.From)), t.Name(int(r.e.To))
		var cum uint64
		for _, b := range r.h.Buckets() {
			cum += b.Count
			p("cubicleos_call_cycles_bucket{from=%q,to=%q,le=\"%d\"} %d\n", from, to, b.Le, cum)
		}
		p("cubicleos_call_cycles_bucket{from=%q,to=%q,le=\"+Inf\"} %d\n", from, to, r.h.Count())
		p("cubicleos_call_cycles_sum{from=%q,to=%q} %d\n", from, to, r.h.Sum())
		p("cubicleos_call_cycles_count{from=%q,to=%q} %d\n", from, to, r.h.Count())
	}

	p("# HELP cubicleos_call_cycles_quantile Call latency quantiles in virtual cycles, per directed edge.\n")
	p("# TYPE cubicleos_call_cycles_quantile gauge\n")
	for _, r := range rows {
		from, to := t.Name(int(r.e.From)), t.Name(int(r.e.To))
		s := r.h.Summary()
		p("cubicleos_call_cycles_quantile{from=%q,to=%q,q=\"0.5\"} %d\n", from, to, s.P50)
		p("cubicleos_call_cycles_quantile{from=%q,to=%q,q=\"0.95\"} %d\n", from, to, s.P95)
		p("cubicleos_call_cycles_quantile{from=%q,to=%q,q=\"0.99\"} %d\n", from, to, s.P99)
		p("cubicleos_call_cycles_quantile{from=%q,to=%q,q=\"1\"} %d\n", from, to, s.Max)
	}

	for k := Kind(0); k < numKinds; k++ {
		h := t.ClassHist(k)
		if h == nil || h.Count() == 0 {
			continue
		}
		s := h.Summary()
		p("# TYPE cubicleos_event_cycles_quantile gauge\n")
		p("cubicleos_event_cycles_quantile{kind=%q,q=\"0.5\"} %d\n", k.String(), s.P50)
		p("cubicleos_event_cycles_quantile{kind=%q,q=\"0.95\"} %d\n", k.String(), s.P95)
		p("cubicleos_event_cycles_quantile{kind=%q,q=\"0.99\"} %d\n", k.String(), s.P99)
		p("cubicleos_event_cycles_quantile{kind=%q,q=\"1\"} %d\n", k.String(), s.Max)
	}

	prof := t.Profile()
	p("# HELP cubicleos_cubicle_cycles_total Virtual cycles attributed to each cubicle.\n")
	p("# TYPE cubicleos_cubicle_cycles_total counter\n")
	for _, e := range prof.Entries {
		p("cubicleos_cubicle_cycles_total{cubicle=%q} %d\n", e.Name, e.Cycles)
	}
	if prof.Samples > 0 {
		p("# HELP cubicleos_cubicle_samples_total Virtual-clock profiler samples per cubicle.\n")
		p("# TYPE cubicleos_cubicle_samples_total counter\n")
		for _, e := range prof.Entries {
			p("cubicleos_cubicle_samples_total{cubicle=%q} %d\n", e.Name, e.Samples)
		}
	}
	p("# HELP cubicleos_virtual_cycles Total virtual cycles on the machine clock.\n")
	p("# TYPE cubicleos_virtual_cycles counter\n")
	p("cubicleos_virtual_cycles %d\n", t.MaxCycles())
	p("cubicleos_trace_events_recorded %d\n", t.Recorded())
	p("cubicleos_trace_events_dropped %d\n", t.Dropped())
	if len(t.shards) > 1 {
		p("# HELP cubicleos_trace_shard_events_recorded Events recorded per ring shard.\n")
		p("# TYPE cubicleos_trace_shard_events_recorded counter\n")
		for i, s := range t.shards {
			p("cubicleos_trace_shard_events_recorded{core=\"%d\"} %d\n", i, s.next)
		}
		p("# HELP cubicleos_trace_shard_events_dropped Events overwritten by ring wrap per shard.\n")
		p("# TYPE cubicleos_trace_shard_events_dropped counter\n")
		for i, s := range t.shards {
			p("cubicleos_trace_shard_events_dropped{core=\"%d\"} %d\n", i, s.dropped())
		}
	}
	return err
}

// --- JSON snapshot -----------------------------------------------------------

// SnapshotEdge is one per-edge row of the machine-readable snapshot.
type SnapshotEdge struct {
	From   string  `json:"from"`
	To     string  `json:"to"`
	FromID int     `json:"from_id"`
	ToID   int     `json:"to_id"`
	Calls  uint64  `json:"calls"`
	Cycles Summary `json:"cycles"`
}

// ShardStat is one ring shard's recording/drop accounting.
type ShardStat struct {
	Core     int    `json:"core"`
	Recorded uint64 `json:"recorded"`
	Dropped  uint64 `json:"dropped"`
}

// Snapshot is the machine-readable digest of a traced run.
type Snapshot struct {
	VirtualCycles uint64             `json:"virtual_cycles"`
	Cores         int                `json:"cores"`
	Recorded      uint64             `json:"events_recorded"`
	Dropped       uint64             `json:"events_dropped"`
	Shards        []ShardStat        `json:"shards,omitempty"`
	Counts        map[string]uint64  `json:"counts"`
	Weights       map[string]uint64  `json:"weights"`
	Edges         []SnapshotEdge     `json:"edges"`
	EventCycles   map[string]Summary `json:"event_cycles"`
	Profile       Profile            `json:"profile"`
}

// Snapshot builds the machine-readable digest of everything the tracer
// has observed.
func (t *Tracer) Snapshot() *Snapshot {
	s := &Snapshot{
		VirtualCycles: t.MaxCycles(),
		Cores:         len(t.shards),
		Recorded:      t.Recorded(),
		Dropped:       t.Dropped(),
		Counts:        make(map[string]uint64),
		Weights:       make(map[string]uint64),
		EventCycles:   make(map[string]Summary),
		Profile:       t.Profile(),
	}
	if len(t.shards) > 1 {
		for i, sh := range t.shards {
			s.Shards = append(s.Shards, ShardStat{Core: i, Recorded: sh.next, Dropped: sh.dropped()})
		}
	}
	counts, weights := t.countsAll()
	for k := Kind(0); k < numKinds; k++ {
		if counts[k] != 0 {
			s.Counts[k.String()] = counts[k]
		}
		if weights[k] != 0 {
			s.Weights[k.String()] = weights[k]
		}
		if h := t.ClassHist(k); h != nil && h.Count() > 0 {
			s.EventCycles[k.String()] = h.Summary()
		}
	}
	edgeCalls := t.EdgeCalls()
	for _, es := range t.EdgeSummaries() {
		s.Edges = append(s.Edges, SnapshotEdge{
			From:   t.Name(int(es.Edge.From)),
			To:     t.Name(int(es.Edge.To)),
			FromID: int(es.Edge.From),
			ToID:   int(es.Edge.To),
			Calls:  edgeCalls[es.Edge],
			Cycles: es.Hist,
		})
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(t.Snapshot(), "", " ")
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
