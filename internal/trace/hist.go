package trace

import "math/bits"

// NumBuckets is the number of log₂ histogram buckets. Bucket i counts
// observations v with 2^(i-1) < v ≤ 2^i (bucket 0 counts v ≤ 1), so the
// top bucket absorbs everything above 2^62 — far beyond any realistic
// virtual-cycle span.
const NumBuckets = 64

// Hist is a streaming log₂ histogram of virtual-cycle observations. It is
// fixed-size and allocation-free after construction, so the tracer can
// keep one per call edge and per event class on the hot path.
type Hist struct {
	buckets [NumBuckets]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// bucketOf returns the bucket index for v: ceil(log₂ v), clamped.
func bucketOf(v uint64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(v - 1) // ceil(log2(v)) for v ≥ 2
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// BucketBound returns the inclusive upper bound of bucket i (2^i).
func BucketBound(i int) uint64 {
	if i >= 63 {
		return ^uint64(0)
	}
	return uint64(1) << uint(i)
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge folds another histogram's observations into h. The per-core ring
// shards keep independent histograms on the hot path; exporters merge
// them into one view at report time.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.count == 0 {
		return
	}
	for i, n := range o.buckets {
		h.buckets[i] += n
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.count }

// Sum returns the sum of all observations.
func (h *Hist) Sum() uint64 { return h.sum }

// Max returns the largest observation (0 if none).
func (h *Hist) Max() uint64 { return h.max }

// Min returns the smallest observation (0 if none).
func (h *Hist) Min() uint64 { return h.min }

// Mean returns the arithmetic mean (0 if none).
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1): the upper
// bound of the bucket holding the q·count-th observation. With log₂
// buckets the estimate is exact to within a factor of 2, which is the
// resolution the cost model itself works at.
func (h *Hist) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen > rank {
			b := BucketBound(i)
			if b > h.max {
				b = h.max
			}
			return b
		}
	}
	return h.max
}

// Buckets returns the non-empty buckets as (upper bound, count) pairs in
// ascending order, for exporters.
func (h *Hist) Buckets() []BucketCount {
	var out []BucketCount
	for i, n := range h.buckets {
		if n != 0 {
			out = append(out, BucketCount{Le: BucketBound(i), Count: n})
		}
	}
	return out
}

// BucketCount is one non-empty histogram bucket.
type BucketCount struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// Summary is the queryable digest of a histogram.
type Summary struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P95   uint64  `json:"p95"`
	P99   uint64  `json:"p99"`
	Max   uint64  `json:"max"`
}

// Summary digests the histogram into count/sum/mean/p50/p95/p99/max.
func (h *Hist) Summary() Summary {
	return Summary{
		Count: h.count,
		Sum:   h.sum,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.max,
	}
}
