package trace

import (
	"sort"

	"cubicleos/internal/cycles"
)

// profiler attributes virtual cycles to the cubicle that was executing
// when they were charged. The simulator is cooperatively scheduled, so a
// single "currently executing cubicle" register is exact: the monitor
// tells the profiler about every cubicle switch (trampoline call enter
// and exit, RunAs), and every clock charge in between belongs to the
// cubicle in that register. On top of the exact span attribution, an
// optional virtual-clock sampler ticks every Period cycles and counts one
// sample against the running cubicle — the flat profile a hardware
// perf-style sampler would deliver.
type profiler struct {
	clock  *cycles.Clock
	cur    int32  // currently executing cubicle
	mark   uint64 // clock value when cur started executing
	cycles map[int32]uint64

	period     uint64
	nextSample uint64
	samples    map[int32]uint64
}

func (p *profiler) init(clock *cycles.Clock) {
	p.clock = clock
	p.cur = 0 // boot executes as the monitor
	p.mark = clock.Cycles()
	p.cycles = make(map[int32]uint64)
	p.samples = make(map[int32]uint64)
}

// switchTo flushes the span of the previously running cubicle and makes
// cub the attribution target.
func (p *profiler) switchTo(cub int32) {
	now := p.clock.Cycles()
	p.cycles[p.cur] += now - p.mark
	p.cur = cub
	p.mark = now
}

// flush attributes the still-open span without changing the target.
func (p *profiler) flush() {
	now := p.clock.Cycles()
	p.cycles[p.cur] += now - p.mark
	p.mark = now
}

// tick is the clock-advance observer driving the sampler.
func (p *profiler) tick(now uint64) {
	for now >= p.nextSample {
		p.samples[p.cur]++
		p.nextSample += p.period
	}
}

// SwitchCubicle informs the profiler that execution switched to cub.
// The monitor calls this from every crossing frame push/pop; on SMP
// machines the monitor lock serialises the calls, and t.mu additionally
// orders them against recording.
func (t *Tracer) SwitchCubicle(cub int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.prof.switchTo(int32(cub))
}

// EnableSampling starts the virtual-clock sampler with the given period
// in cycles, hooking the clock's advance observer. A period of 0 disables
// sampling again.
func (t *Tracer) EnableSampling(period uint64) {
	if period == 0 {
		t.clock.SetOnAdvance(nil)
		t.prof.period = 0
		return
	}
	t.prof.period = period
	t.prof.nextSample = t.clock.Cycles() + period
	t.clock.SetOnAdvance(t.prof.tick)
}

// ProfileEntry is one cubicle's row of the cycle profile.
type ProfileEntry struct {
	Cubicle int     `json:"cubicle"`
	Name    string  `json:"name"`
	Cycles  uint64  `json:"cycles"`
	Percent float64 `json:"percent"`
	Samples uint64  `json:"samples"`
}

// Profile is the per-cubicle "where did the time go" report.
type Profile struct {
	// TotalCycles is the sum over entries — equal to the virtual clock
	// minus the cycle at which tracing was enabled.
	TotalCycles uint64         `json:"total_cycles"`
	Samples     uint64         `json:"samples"`
	Period      uint64         `json:"sample_period,omitempty"`
	Entries     []ProfileEntry `json:"entries"`
}

// Profile flushes the open span and returns the per-cubicle cycle
// profile, sorted by descending cycles (ties by cubicle ID).
func (t *Tracer) Profile() Profile {
	t.prof.flush()
	p := Profile{Period: t.prof.period}
	for cub, cyc := range t.prof.cycles {
		p.TotalCycles += cyc
		p.Entries = append(p.Entries, ProfileEntry{
			Cubicle: int(cub),
			Name:    t.Name(int(cub)),
			Cycles:  cyc,
			Samples: t.prof.samples[cub],
		})
	}
	for i := range p.Entries {
		if p.TotalCycles > 0 {
			p.Entries[i].Percent = 100 * float64(p.Entries[i].Cycles) / float64(p.TotalCycles)
		}
		p.Samples += p.Entries[i].Samples
	}
	sort.Slice(p.Entries, func(i, j int) bool {
		if p.Entries[i].Cycles != p.Entries[j].Cycles {
			return p.Entries[i].Cycles > p.Entries[j].Cycles
		}
		return p.Entries[i].Cubicle < p.Entries[j].Cubicle
	})
	return p
}
