package trace

import (
	"sort"

	"cubicleos/internal/cycles"
)

// profiler attributes virtual cycles to the cubicle that was executing
// when they were charged. Each ring shard carries its own profiler over
// its core's clock: a core is cooperatively scheduled from the monitor's
// point of view, so a single "currently executing cubicle" register per
// core is exact — the monitor tells the profiler about every cubicle
// switch (trampoline call enter and exit, RunAs) on that core, and every
// clock charge in between belongs to the cubicle in that register. On top
// of the exact span attribution, an optional virtual-clock sampler ticks
// every Period cycles and counts one sample against the running cubicle —
// the flat profile a hardware perf-style sampler would deliver.
// profDim bounds the profiler's flat attribution arrays: slot cub+1
// covers cubicles -1 (runtime) through edgeDim-1 with a plain array
// store on the hot path; IDs outside fall back to an overflow map.
const profDim = edgeDim + 1

type profiler struct {
	clock  *cycles.Clock
	cur    int32  // currently executing cubicle
	mark   uint64 // clock value when cur started executing
	cycles [profDim]uint64
	cycOvf map[int32]uint64

	period     uint64
	nextSample uint64
	samples    [profDim]uint64
	smpOvf     map[int32]uint64
}

func (p *profiler) init(clock *cycles.Clock) {
	p.clock = clock
	p.cur = 0 // boot executes as the monitor
	p.mark = clock.Cycles()
}

// switchTo flushes the span of the previously running cubicle and makes
// cub the attribution target.
func (p *profiler) switchTo(cub int32) {
	now := p.clock.Cycles()
	if i := uint32(p.cur + 1); i < profDim {
		p.cycles[i] += now - p.mark
	} else {
		if p.cycOvf == nil {
			p.cycOvf = make(map[int32]uint64)
		}
		p.cycOvf[p.cur] += now - p.mark
	}
	p.cur = cub
	p.mark = now
}

// flush attributes the still-open span without changing the target.
func (p *profiler) flush() {
	cur := p.cur
	p.switchTo(cur)
}

// tick is the clock-advance observer driving the sampler.
func (p *profiler) tick(now uint64) {
	for now >= p.nextSample {
		if i := uint32(p.cur + 1); i < profDim {
			p.samples[i]++
		} else {
			if p.smpOvf == nil {
				p.smpOvf = make(map[int32]uint64)
			}
			p.smpOvf[p.cur]++
		}
		p.nextSample += p.period
	}
}

// forEach visits every cubicle with attributed cycles or samples.
func (p *profiler) forEach(fn func(cub int32, cyc, samples uint64)) {
	for i := 0; i < profDim; i++ {
		if p.cycles[i] == 0 && p.samples[i] == 0 {
			continue
		}
		fn(int32(i-1), p.cycles[i], p.samples[i])
	}
	for cub, cyc := range p.cycOvf {
		fn(cub, cyc, p.smpOvf[cub])
	}
	for cub, n := range p.smpOvf {
		if _, dup := p.cycOvf[cub]; !dup {
			fn(cub, 0, n)
		}
	}
}

// SwitchCubicle informs the profiler that execution on thread's core
// switched to cub. The monitor calls this from every crossing frame
// push/pop; on SMP machines the monitor lock serialises the calls with
// recording, exactly as for event emission.
func (t *Tracer) SwitchCubicle(thread, cub int) {
	t.shardFor(thread).prof.switchTo(int32(cub))
}

// EnableSampling starts the virtual-clock sampler with the given period
// in cycles on every shard, hooking each core clock's advance observer.
// A period of 0 disables sampling again.
func (t *Tracer) EnableSampling(period uint64) {
	for _, s := range t.shards {
		if period == 0 {
			s.clock.SetOnAdvance(nil)
			s.prof.period = 0
			continue
		}
		s.prof.period = period
		s.prof.nextSample = s.clock.Cycles() + period
		s.clock.SetOnAdvance(s.prof.tick)
	}
}

// ProfileEntry is one cubicle's row of the cycle profile.
type ProfileEntry struct {
	Cubicle int     `json:"cubicle"`
	Name    string  `json:"name"`
	Cycles  uint64  `json:"cycles"`
	Percent float64 `json:"percent"`
	Samples uint64  `json:"samples"`
}

// Profile is the per-cubicle "where did the time go" report.
type Profile struct {
	// TotalCycles is the sum over entries — on a single-core machine,
	// equal to the virtual clock minus the cycle at which tracing was
	// enabled; on SMP, the sum of every core's traced span.
	TotalCycles uint64         `json:"total_cycles"`
	Samples     uint64         `json:"samples"`
	Period      uint64         `json:"sample_period,omitempty"`
	Entries     []ProfileEntry `json:"entries"`
}

// Profile flushes the open spans and returns the per-cubicle cycle
// profile merged over cores, sorted by descending cycles (ties by
// cubicle ID).
func (t *Tracer) Profile() Profile {
	cyclesBy := make(map[int32]uint64)
	samplesBy := make(map[int32]uint64)
	for _, s := range t.shards {
		s.prof.flush()
		s.prof.forEach(func(cub int32, cyc, n uint64) {
			cyclesBy[cub] += cyc
			samplesBy[cub] += n
		})
	}
	p := Profile{Period: t.s0.prof.period}
	for cub, cyc := range cyclesBy {
		p.TotalCycles += cyc
		p.Entries = append(p.Entries, ProfileEntry{
			Cubicle: int(cub),
			Name:    t.Name(int(cub)),
			Cycles:  cyc,
			Samples: samplesBy[cub],
		})
	}
	for i := range p.Entries {
		if p.TotalCycles > 0 {
			p.Entries[i].Percent = 100 * float64(p.Entries[i].Cycles) / float64(p.TotalCycles)
		}
		p.Samples += p.Entries[i].Samples
	}
	sort.Slice(p.Entries, func(i, j int) bool {
		if p.Entries[i].Cycles != p.Entries[j].Cycles {
			return p.Entries[i].Cycles > p.Entries[j].Cycles
		}
		return p.Entries[i].Cubicle < p.Entries[j].Cubicle
	})
	return p
}
