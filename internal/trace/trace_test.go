package trace

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"cubicleos/internal/cycles"
)

func TestHistBuckets(t *testing.T) {
	var h Hist
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	for _, c := range cases {
		h.Observe(c.v)
		if c.v > BucketBound(c.bucket) {
			t.Errorf("value %d above its bucket bound %d", c.v, BucketBound(c.bucket))
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
	if h.Max() != 1025 || h.Min() != 0 {
		t.Fatalf("min/max = %d/%d, want 0/1025", h.Min(), h.Max())
	}
}

func TestHistQuantile(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty hist quantile should be 0")
	}
	// 90 cheap observations, 10 expensive ones.
	for i := 0; i < 90; i++ {
		h.Observe(10) // bucket le=16
	}
	for i := 0; i < 10; i++ {
		h.Observe(5000) // bucket le=8192
	}
	if q := h.Quantile(0.5); q != 16 {
		t.Errorf("p50 = %d, want bucket bound 16", q)
	}
	// p99 lands in the expensive bucket; the estimate is the bucket's
	// upper bound clamped to the observed max.
	if q := h.Quantile(0.99); q != 5000 {
		t.Errorf("p99 = %d, want max-clamped 5000", q)
	}
	s := h.Summary()
	if s.Count != 100 || s.Sum != 90*10+10*5000 || s.Max != 5000 {
		t.Errorf("summary = %+v", s)
	}
}

func TestRingWrapKeepsCounts(t *testing.T) {
	clock := &cycles.Clock{}
	tr := New(clock, 16)
	for i := 0; i < 100; i++ {
		clock.Charge(10)
		tr.Retag(-1, 1, uint64(i), 2)
	}
	if got := tr.Count(EvRetag); got != 100 {
		t.Fatalf("streaming count = %d, want 100 despite ring wrap", got)
	}
	evs := tr.Events()
	if len(evs) != 16 {
		t.Fatalf("ring holds %d events, want 16", len(evs))
	}
	if tr.Dropped() != 100-16 {
		t.Fatalf("dropped = %d, want %d", tr.Dropped(), 100-16)
	}
	// Chronological order, and the survivors are the newest events.
	for i, ev := range evs {
		if want := uint64(100 - 16 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestCallPairingAndEdgeHist(t *testing.T) {
	clock := &cycles.Clock{}
	tr := New(clock, 64)
	tr.CallEnter(0, 1, 2, "a.f", 32)
	clock.Charge(500)
	// Nested call on the same thread.
	tr.CallEnter(0, 2, 3, "b.g", 16)
	clock.Charge(100)
	tr.CallExit(0, 2, 3, "b.g")
	clock.Charge(400)
	tr.CallExit(0, 1, 2, "a.f")

	if h := tr.EdgeHist(Edge{2, 3}); h == nil || h.Count() != 1 || h.Sum() != 100 {
		t.Fatalf("inner edge hist = %+v", h)
	}
	if h := tr.EdgeHist(Edge{1, 2}); h == nil || h.Count() != 1 || h.Sum() != 1000 {
		t.Fatalf("outer edge hist = %+v", h)
	}
	c := tr.Counts()
	if c.CallsTotal != 2 || c.StackBytesCopied != 48 {
		t.Fatalf("counts = %+v", c)
	}
	if c.Calls[Edge{1, 2}] != 1 || c.Calls[Edge{2, 3}] != 1 {
		t.Fatalf("edge calls = %v", c.Calls)
	}
}

func TestProfileAttribution(t *testing.T) {
	clock := &cycles.Clock{}
	tr := New(clock, 64)
	tr.SetNamer(func(id int) string { return map[int]string{0: "A", 1: "B"}[id] })

	clock.Charge(100) // cubicle 0 (initial)
	tr.SwitchCubicle(0, 1)
	clock.Charge(300) // cubicle 1
	tr.SwitchCubicle(0, 0)
	clock.Charge(50) // cubicle 0 again

	p := tr.Profile()
	if p.TotalCycles != 450 {
		t.Fatalf("total = %d, want 450", p.TotalCycles)
	}
	if len(p.Entries) != 2 {
		t.Fatalf("entries = %+v", p.Entries)
	}
	// Sorted by descending cycles: B=300, A=150.
	if p.Entries[0].Name != "B" || p.Entries[0].Cycles != 300 {
		t.Fatalf("top entry = %+v", p.Entries[0])
	}
	if p.Entries[1].Name != "A" || p.Entries[1].Cycles != 150 {
		t.Fatalf("second entry = %+v", p.Entries[1])
	}
}

func TestSamplingProfiler(t *testing.T) {
	clock := &cycles.Clock{}
	tr := New(clock, 64)
	tr.EnableSampling(100)
	tr.SwitchCubicle(0, 7)
	for i := 0; i < 10; i++ {
		clock.Charge(100)
	}
	p := tr.Profile()
	if p.Samples != 10 {
		t.Fatalf("samples = %d, want 10", p.Samples)
	}
	if len(p.Entries) == 0 || p.Entries[0].Cubicle != 7 || p.Entries[0].Samples != 10 {
		t.Fatalf("entries = %+v", p.Entries)
	}
	// Disabling must unhook the clock observer.
	tr.EnableSampling(0)
	clock.Charge(1000)
	if got := tr.Profile().Samples; got != 10 {
		t.Fatalf("samples advanced to %d after disable", got)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	clock := &cycles.Clock{}
	tr := New(clock, 64)
	tr.SetNamer(func(id int) string { return "CUB" + itoa(id) })
	tr.CallEnter(0, 1, 2, "b.read", 64)
	clock.Charge(2200)
	tr.Fault(0, 2, 1, 0x4000, 1500)
	tr.Retag(-1, 2, 0x4000, 3)
	tr.CallExit(0, 1, 2, "b.read")
	tr.Mark(0, 2, "checkpoint")

	raw, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
	}
	if phases["B"] != 1 || phases["E"] != 1 {
		t.Fatalf("want one B/E span pair, got %v", phases)
	}
	if phases["X"] != 1 {
		t.Fatalf("fault should be a complete event, got %v", phases)
	}
	if phases["M"] == 0 {
		t.Fatalf("missing metadata events: %v", phases)
	}
}

// multiShardTracer builds a 3-core tracer with thread n pinned to core n
// and a distinct clock per core.
func multiShardTracer(ringCap int) (*Tracer, []*cycles.Clock) {
	clks := []*cycles.Clock{{}, {}, {}}
	tr := New(clks[0], ringCap)
	tr.SetCores(clks, func(thread int) int { return thread % 3 })
	return tr, clks
}

func TestChromePerCoreTracks(t *testing.T) {
	tr, clks := multiShardTracer(64)
	tr.CallEnter(0, 1, 2, "a.f", 0)
	clks[0].Charge(10)
	tr.CallExit(0, 1, 2, "a.f")
	tr.CallEnter(1, 1, 2, "b.g", 0)
	clks[1].Charge(10)
	tr.CallExit(1, 1, 2, "b.g")
	tr.Retag(-1, 1, 0x4000, 2) // monitor context: shard 0, synthetic track

	raw, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	tids := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" {
			continue
		}
		tids[ev["tid"].(float64)] = true
	}
	// Multi-shard tid bands: 1000*(core+1)+thread, monitor events on 99.
	for _, want := range []float64{1000, 2001, 99} {
		if !tids[want] {
			t.Errorf("missing per-core track tid %v (got %v)", want, tids)
		}
	}
	if tids[0] || tids[1] {
		t.Errorf("multi-core trace still uses bare thread tids: %v", tids)
	}
}

func TestShardMergeOrdering(t *testing.T) {
	tr, clks := multiShardTracer(64)
	// Interleave emissions so per-core cycle stamps overlap: core 2 runs
	// ahead, core 0 lags, core 1 in between.
	for i := 0; i < 5; i++ {
		clks[0].Charge(10)
		tr.Retag(0, 1, uint64(i), 2)
		clks[1].Charge(25)
		tr.Retag(1, 1, uint64(100+i), 2)
		clks[2].Charge(40)
		tr.Retag(2, 1, uint64(200+i), 2)
	}
	evs := tr.Events()
	if len(evs) != 15 {
		t.Fatalf("merged %d events, want 15", len(evs))
	}
	lastSeq := map[int16]uint64{}
	seen := map[int16]bool{}
	for i, ev := range evs {
		if i > 0 {
			p := evs[i-1]
			if ev.Cycle < p.Cycle {
				t.Fatalf("merge regresses in GVT at %d: %d after %d", i, ev.Cycle, p.Cycle)
			}
			if ev.Cycle == p.Cycle && (ev.Core < p.Core || (ev.Core == p.Core && ev.Seq < p.Seq)) {
				t.Fatalf("merge breaks (cycle, core, seq) tie-break at %d", i)
			}
		}
		if seen[ev.Core] && ev.Seq <= lastSeq[ev.Core] {
			t.Fatalf("core %d subsequence out of order at %d", ev.Core, i)
		}
		seen[ev.Core], lastSeq[ev.Core] = true, ev.Seq
	}
	// Per-shard counts must sum to the merged total.
	var sum int
	for c := 0; c < tr.Cores(); c++ {
		sum += len(tr.ShardEvents(c))
	}
	if sum != len(evs) {
		t.Fatalf("shard events sum to %d, merged stream has %d", sum, len(evs))
	}
	if tr.Recorded() != 15 || tr.Dropped() != 0 {
		t.Fatalf("recorded/dropped = %d/%d, want 15/0", tr.Recorded(), tr.Dropped())
	}
}

func TestShardDropAccounting(t *testing.T) {
	tr, clks := multiShardTracer(16)
	// Overflow only core 1's ring; drops must be counted per shard and
	// never bleed into the others.
	for i := 0; i < 40; i++ {
		clks[1].Charge(10)
		tr.Retag(1, 1, uint64(i), 2)
	}
	clks[0].Charge(10)
	tr.Retag(0, 1, 999, 2)
	if got := tr.ShardDropped(1); got != 40-16 {
		t.Fatalf("core 1 dropped %d, want %d", got, 40-16)
	}
	if tr.ShardDropped(0) != 0 || tr.ShardDropped(2) != 0 {
		t.Fatalf("drops bled across shards: %d/%d",
			tr.ShardDropped(0), tr.ShardDropped(2))
	}
	if tr.Dropped() != 40-16 {
		t.Fatalf("total dropped %d, want %d", tr.Dropped(), 40-16)
	}
	if got := tr.Count(EvRetag); got != 41 {
		t.Fatalf("streaming count %d survived drops wrong, want 41", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	clock := &cycles.Clock{}
	tr := New(clock, 64)
	tr.CallEnter(0, 1, 2, "b.read", 64)
	clock.Charge(4000)
	tr.CallExit(0, 1, 2, "b.read")
	tr.SwitchCubicle(0, 1)
	clock.Charge(100)

	var buf bytes.Buffer
	if err := tr.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`cubicleos_events_total{kind="call_enter"} 1`,
		`cubicleos_call_cycles_bucket{from="cubicle-1",to="cubicle-2",le="+Inf"} 1`,
		`cubicleos_call_cycles_sum{from="cubicle-1",to="cubicle-2"} 4000`,
		`cubicleos_call_cycles_count{from="cubicle-1",to="cubicle-2"} 1`,
		"# TYPE cubicleos_call_cycles histogram",
		"cubicleos_virtual_cycles 4100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Cumulative histogram: every bucket count must be non-decreasing.
	last := -1.0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, `cubicleos_call_cycles_bucket{from="cubicle-1"`) {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative: %q after %v", line, last)
		}
		last = v
	}
}

func TestSnapshotJSON(t *testing.T) {
	clock := &cycles.Clock{}
	tr := New(clock, 64)
	tr.CallEnter(0, 1, 2, "b.read", 64)
	clock.Charge(4000)
	tr.CallExit(0, 1, 2, "b.read")

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if snap.VirtualCycles != 4000 || snap.Recorded != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(snap.Edges) != 1 || snap.Edges[0].Calls != 1 {
		t.Fatalf("edges = %+v", snap.Edges)
	}
}

func TestEdgeSummariesOrder(t *testing.T) {
	clock := &cycles.Clock{}
	tr := New(clock, 64)
	call := func(from, to int, n int) {
		for i := 0; i < n; i++ {
			tr.CallEnter(0, from, to, "x", 0)
			clock.Charge(10)
			tr.CallExit(0, from, to, "x")
		}
	}
	call(3, 4, 1)
	call(1, 2, 5)
	call(2, 3, 5) // ties with 1->2 on count; 1->2 must sort first
	s := tr.EdgeSummaries()
	if len(s) != 3 {
		t.Fatalf("summaries = %+v", s)
	}
	if s[0].Edge != (Edge{1, 2}) || s[1].Edge != (Edge{2, 3}) || s[2].Edge != (Edge{3, 4}) {
		t.Fatalf("order = %v %v %v", s[0].Edge, s[1].Edge, s[2].Edge)
	}
}
