// Package trace is the observability layer of the simulated machine: a
// fixed-capacity ring of typed events stamped with the virtual cycle
// clock, streaming per-edge and per-event-class cycle histograms, and a
// virtual-clock profiler that attributes elapsed cycles to the cubicle
// executing when they were charged.
//
// The tracer is zero-dependency (it knows cubicles and threads only as
// integer IDs, resolved to names by a caller-installed namer) and is
// designed so that the *disabled* state costs the monitor exactly one nil
// check per hot-path event and zero allocations. When enabled, recording
// is allocation-free in steady state: the ring is preallocated, the
// histograms are fixed-size, and event labels are interned strings the
// instrumentation sites pass as constants.
package trace

import (
	"sort"
	"sync"

	"cubicleos/internal/cycles"
)

// Kind is the type of one trace event.
type Kind uint8

const (
	// EvCallEnter marks a cross-cubicle call entering its trampoline:
	// Cubicle is the caller, Other the callee, Arg the in-stack argument
	// bytes copied, Name the trampoline symbol.
	EvCallEnter Kind = iota
	// EvCallExit marks the matching return; Arg is the inclusive elapsed
	// cycles of the call.
	EvCallExit
	// EvSharedCall is a call into a shared cubicle (no TCB involvement).
	EvSharedCall
	// EvFault is a protection trap served by trap-and-map; Arg is the
	// faulting address and Cost the cycles spent in the handler.
	EvFault
	// EvDeniedFault is a protection trap no window authorised.
	EvDeniedFault
	// EvRetag is one page retag (pkey_mprotect); Arg is the page address,
	// Other the new key.
	EvRetag
	// EvWRPKRU is one wrpkru execution; Arg is the new PKRU value.
	EvWRPKRU
	// EvWindowOp is a window-management API call; Name is the operation
	// (init/add/remove/open/close/close_all/destroy/pin/unpin), Arg the
	// window ID.
	EvWindowOp
	// EvWindowSearch is one linear window-descriptor search; Arg is the
	// number of descriptor entries visited.
	EvWindowSearch
	// EvKeyEviction is an MPK key recycled by tag virtualisation; Other
	// is the evicted cubicle, Arg the physical key.
	EvKeyEviction
	// EvIPC is one message-passing call of the microkernel baselines;
	// Name is the operation, Arg the payload bytes marshalled.
	EvIPC
	// EvCopy is a checked bulk copy (memcpy/memset); Arg is the byte count.
	EvCopy
	// EvMark is an application-level marker (e.g. HTTP request lifecycle).
	EvMark
	// EvContained is a fault contained at a cross-cubicle call boundary:
	// Cubicle is the faulted (or refused) callee, Other the caller the
	// typed error was delivered to, Name the fault class.
	EvContained
	// EvQuarantine is a cubicle entering the Quarantined health state;
	// Arg is the backoff in virtual cycles before a restart is allowed.
	EvQuarantine
	// EvRestart is a supervisor restart of a quarantined cubicle; Arg is
	// the cubicle's lifetime restart count after this restart.
	EvRestart
	// EvInjected is one deterministic fault injection firing; Name is the
	// injection site/kind label.
	EvInjected
	// EvShed is a request refused by admission control: Cubicle is the
	// shedding cubicle, Name the reason label (e.g. conn_limit, quota),
	// Arg the HTTP status sent back (429/503).
	EvShed
	// EvDeadline is a crossing or work quantum abandoned because the
	// thread's virtual-clock deadline had passed; Cubicle is where the
	// expiry was detected, Arg the deadline, Cost how far past it the
	// clock was.
	EvDeadline
	// EvQuota is a memory-quota refusal: Cubicle is the cubicle whose
	// quota was exhausted, Name the resource label, Arg the attempted
	// usage, Cost the limit.
	EvQuota
	// EvRetry is one bounded-retry attempt after a transient contained
	// fault; Cubicle is the retrying caller, Arg the attempt number,
	// Cost the virtual-cycle backoff charged before it.
	EvRetry
	// EvShootdown is the TLB shootdown a page retag performs on a
	// multi-core machine (libmpk-style per-core key synchronisation):
	// Cubicle is the retagged page's owner, Arg the number of remote
	// span-TLB entries invalidated, Cost the synchronisation cycles
	// charged (ShootdownIPI per remote core). Single-core runs never
	// record one.
	EvShootdown

	numKinds
)

var kindNames = [numKinds]string{
	EvCallEnter:    "call_enter",
	EvCallExit:     "call_exit",
	EvSharedCall:   "shared_call",
	EvFault:        "fault",
	EvDeniedFault:  "denied_fault",
	EvRetag:        "retag",
	EvWRPKRU:       "wrpkru",
	EvWindowOp:     "window_op",
	EvWindowSearch: "window_search",
	EvKeyEviction:  "key_eviction",
	EvIPC:          "ipc",
	EvCopy:         "copy",
	EvMark:         "mark",
	EvContained:    "contained",
	EvQuarantine:   "quarantine",
	EvRestart:      "restart",
	EvInjected:     "injected",
	EvShed:         "shed",
	EvDeadline:     "deadline",
	EvQuota:        "quota",
	EvRetry:        "retry",
	EvShootdown:    "shootdown",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one entry of the trace ring. Field meaning varies by Kind (see
// the Kind constants); Cycle is the recording core's virtual clock at
// record time, Core the simulated core the recording thread runs on (0 on
// single-core machines), Cost the cycles attributed to the event itself
// where that is meaningful (call elapsed, fault-handler span, IPC charge).
type Event struct {
	Seq     uint64
	Cycle   uint64
	Kind    Kind
	Thread  int32
	Core    int32
	Cubicle int32
	Other   int32
	Arg     uint64
	Cost    uint64
	Name    string
}

// Edge is a directed caller→callee pair, the unit of per-edge histograms.
type Edge struct {
	From, To int32
}

// Tracer is the recording side of the observability layer. Recording and
// the streaming-counter queries are internally synchronised, so threads
// running on different simulated cores may record concurrently; event Seq
// order is the serialisation order under that lock. The report-building
// exporters (ChromeTrace, WritePrometheus, Snapshot, Profile) are
// coordinator-only: call them after the run, with all workers quiescent.
type Tracer struct {
	mu    sync.Mutex
	clock *cycles.Clock
	namer func(int) string
	// coreOf, when set, resolves a recording thread to its simulated core
	// and per-core clock; events then carry the core ID and are stamped
	// with that core's clock. Unset (single-core), every event records
	// core 0 on the machine clock.
	coreOf func(thread int) (core int, clk *cycles.Clock)

	// Ring buffer: buf[(seq) % cap] for seq in [next-len, next).
	buf  []Event
	next uint64

	counts  [numKinds]uint64
	weights [numKinds]uint64 // sum of Arg for weighted kinds

	edgeCalls map[Edge]uint64
	edgeHists map[Edge]*Hist
	classHist [numKinds]*Hist // cycle cost distributions per event class

	// open call spans per thread, for elapsed-cycle computation.
	open map[int32][]openCall

	// tlbCounters, when set, supplies the monitor's span-TLB gauges for
	// Counts (see SetTLBCounters).
	tlbCounters func() (hits, misses, invalidations uint64)

	prof profiler
}

type openCall struct {
	edge  Edge
	start uint64
}

// New creates a tracer over the given virtual clock with a ring of
// ringCap events (minimum 16).
func New(clock *cycles.Clock, ringCap int) *Tracer {
	if ringCap < 16 {
		ringCap = 16
	}
	t := &Tracer{
		clock:     clock,
		buf:       make([]Event, ringCap),
		edgeCalls: make(map[Edge]uint64),
		edgeHists: make(map[Edge]*Hist),
		open:      make(map[int32][]openCall),
	}
	t.prof.init(clock)
	return t
}

// SetNamer installs the cubicle-ID → name resolver used by exporters.
func (t *Tracer) SetNamer(fn func(int) string) { t.namer = fn }

// SetCoreOf installs the thread → (core, clock) resolver used on
// multi-core machines. Install it at boot, before workers run.
func (t *Tracer) SetCoreOf(fn func(thread int) (core int, clk *cycles.Clock)) {
	t.coreOf = fn
}

// Name resolves a cubicle ID to a display name.
func (t *Tracer) Name(id int) string {
	if t.namer != nil {
		if n := t.namer(id); n != "" {
			return n
		}
	}
	if id < 0 {
		return "runtime"
	}
	return "cubicle-" + itoa(id)
}

// nowFor reads the recording thread's clock (the machine clock for
// monitor-context events and on single-core machines). Callers hold t.mu;
// the cross-goroutine clock read is ordered by the monitor's lock, under
// which all SMP-mode charges and recordings happen.
func (t *Tracer) nowFor(thread int32) uint64 {
	if t.coreOf != nil && thread >= 0 {
		if _, clk := t.coreOf(int(thread)); clk != nil {
			return clk.Cycles()
		}
	}
	return t.clock.Cycles()
}

// record appends ev to the ring and folds it into the streaming counters.
// Callers hold t.mu.
func (t *Tracer) record(ev Event) {
	if t.coreOf != nil && ev.Thread >= 0 {
		core, _ := t.coreOf(int(ev.Thread))
		ev.Core = int32(core)
	}
	ev.Seq = t.next
	ev.Cycle = t.nowFor(ev.Thread)
	t.buf[t.next%uint64(len(t.buf))] = ev
	t.next++
	t.counts[ev.Kind]++
	switch ev.Kind {
	case EvCallEnter, EvWindowSearch, EvCopy, EvIPC, EvShootdown:
		t.weights[ev.Kind] += ev.Arg
	}
	if ev.Cost > 0 {
		h := t.classHist[ev.Kind]
		if h == nil {
			h = &Hist{}
			t.classHist[ev.Kind] = h
		}
		h.Observe(ev.Cost)
	}
}

// CallEnter records a cross-cubicle call entering its trampoline and
// opens the span used to compute its elapsed cycles.
func (t *Tracer) CallEnter(thread, from, to int, sym string, stackBytes uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := Edge{From: int32(from), To: int32(to)}
	t.edgeCalls[e]++
	t.record(Event{Kind: EvCallEnter, Thread: int32(thread), Cubicle: int32(from),
		Other: int32(to), Arg: stackBytes, Name: sym})
	t.open[int32(thread)] = append(t.open[int32(thread)], openCall{edge: e, start: t.nowFor(int32(thread))})
}

// CallExit records the return of the innermost open call on thread,
// observing its inclusive elapsed cycles into the per-edge histogram.
func (t *Tracer) CallExit(thread, from, to int, sym string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tid := int32(thread)
	var elapsed uint64
	if stk := t.open[tid]; len(stk) > 0 {
		oc := stk[len(stk)-1]
		t.open[tid] = stk[:len(stk)-1]
		elapsed = t.nowFor(tid) - oc.start
		h := t.edgeHists[oc.edge]
		if h == nil {
			h = &Hist{}
			t.edgeHists[oc.edge] = h
		}
		h.Observe(elapsed)
	}
	t.record(Event{Kind: EvCallExit, Thread: tid, Cubicle: int32(from),
		Other: int32(to), Arg: elapsed, Cost: elapsed, Name: sym})
}

// SharedCall records a call into a shared cubicle.
func (t *Tracer) SharedCall(thread, cur, callee int, sym string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(Event{Kind: EvSharedCall, Thread: int32(thread), Cubicle: int32(cur),
		Other: int32(callee), Name: sym})
}

// Fault records a protection trap served by trap-and-map; elapsed is the
// cycles the handler charged.
func (t *Tracer) Fault(thread, cur, owner int, addr, elapsed uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(Event{Kind: EvFault, Thread: int32(thread), Cubicle: int32(cur),
		Other: int32(owner), Arg: addr, Cost: elapsed})
}

// DeniedFault records a protection trap that no window authorised.
func (t *Tracer) DeniedFault(thread, cur, owner int, addr uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(Event{Kind: EvDeniedFault, Thread: int32(thread), Cubicle: int32(cur),
		Other: int32(owner), Arg: addr})
}

// Retag records one page retag to the given key on behalf of thread
// (-1 for monitor-context retags such as key evictions and pin rollback).
func (t *Tracer) Retag(thread, cur int, addr uint64, key uint8) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(Event{Kind: EvRetag, Thread: int32(thread), Cubicle: int32(cur),
		Other: int32(key), Arg: addr})
}

// Shootdown records the TLB shootdown a retag performs on a multi-core
// machine: cleared is the number of remote span-TLB entries invalidated,
// cost the synchronisation cycles charged.
func (t *Tracer) Shootdown(thread, cur int, cleared, cost uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(Event{Kind: EvShootdown, Thread: int32(thread), Cubicle: int32(cur),
		Arg: cleared, Cost: cost})
}

// WRPKRU records one wrpkru execution.
func (t *Tracer) WRPKRU(thread, cur int, pkru uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(Event{Kind: EvWRPKRU, Thread: int32(thread), Cubicle: int32(cur), Arg: pkru})
}

// WindowOp records one window-management API call.
func (t *Tracer) WindowOp(cur int, op string, wid int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(Event{Kind: EvWindowOp, Thread: -1, Cubicle: int32(cur), Arg: uint64(wid), Name: op})
}

// WindowSearch records one linear window-descriptor search of the trap
// handler; steps is the number of descriptor entries visited.
func (t *Tracer) WindowSearch(cur int, steps uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(Event{Kind: EvWindowSearch, Thread: -1, Cubicle: int32(cur), Arg: steps})
}

// KeyEviction records an MPK key recycled away from cubicle victim.
func (t *Tracer) KeyEviction(victim int, key uint8) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(Event{Kind: EvKeyEviction, Thread: -1, Cubicle: int32(victim),
		Other: int32(key), Arg: uint64(key)})
}

// IPC records one message-passing call of a microkernel baseline.
func (t *Tracer) IPC(cur int, op string, bytes, cost uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(Event{Kind: EvIPC, Thread: -1, Cubicle: int32(cur), Arg: bytes, Cost: cost, Name: op})
}

// Copy records a checked bulk copy of n bytes.
func (t *Tracer) Copy(cur int, n uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(Event{Kind: EvCopy, Thread: -1, Cubicle: int32(cur), Arg: n})
}

// Mark records an application-level marker. Label should be a constant
// string so that recording stays allocation-free.
func (t *Tracer) Mark(thread, cur int, label string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(Event{Kind: EvMark, Thread: int32(thread), Cubicle: int32(cur), Name: label})
}

// Contained records a fault contained at a crossing: callee is the cubicle
// whose fault was converted into a typed error, caller the cubicle it was
// delivered to, class the fault class label (a constant string).
func (t *Tracer) Contained(thread, callee, caller int, class string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(Event{Kind: EvContained, Thread: int32(thread), Cubicle: int32(callee),
		Other: int32(caller), Name: class})
}

// Quarantine records cubicle id entering quarantine with the given backoff
// in virtual cycles.
func (t *Tracer) Quarantine(id int, backoff uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(Event{Kind: EvQuarantine, Thread: -1, Cubicle: int32(id), Arg: backoff})
}

// Restart records a supervisor restart of cubicle id; count is the
// cubicle's lifetime restart count including this one.
func (t *Tracer) Restart(id int, count uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(Event{Kind: EvRestart, Thread: -1, Cubicle: int32(id), Arg: count})
}

// Injected records one deterministic fault injection against cubicle cub
// at the named site (a constant string).
func (t *Tracer) Injected(cub int, site string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(Event{Kind: EvInjected, Thread: -1, Cubicle: int32(cub), Name: site})
}

// Shed records a request refused by admission control in cubicle cub;
// reason is a constant label and status the HTTP status sent back.
func (t *Tracer) Shed(cub int, reason string, status uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(Event{Kind: EvShed, Thread: -1, Cubicle: int32(cub), Arg: status, Name: reason})
}

// DeadlineMiss records work abandoned in cubicle cub because the thread's
// deadline had passed; now is the clock at detection time.
func (t *Tracer) DeadlineMiss(thread, cub int, deadline, now uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var over uint64
	if now > deadline {
		over = now - deadline
	}
	t.record(Event{Kind: EvDeadline, Thread: int32(thread), Cubicle: int32(cub),
		Arg: deadline, Cost: over})
}

// QuotaHit records a memory-quota refusal for cubicle cub on the named
// resource (a constant string); used is the attempted usage, limit the cap.
func (t *Tracer) QuotaHit(cub int, resource string, used, limit uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(Event{Kind: EvQuota, Thread: -1, Cubicle: int32(cub),
		Arg: used, Cost: limit, Name: resource})
}

// Retry records one bounded-retry attempt by cubicle cub after a transient
// contained fault; backoff is the virtual-cycle penalty charged before it.
func (t *Tracer) Retry(cub int, attempt, backoff uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(Event{Kind: EvRetry, Thread: -1, Cubicle: int32(cub),
		Arg: attempt, Cost: backoff})
}

// --- Queries -----------------------------------------------------------------

// Count returns the number of events of kind k recorded so far (streaming;
// unaffected by ring overwrites).
func (t *Tracer) Count(k Kind) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[k]
}

// Weight returns the accumulated Arg sum for weighted kinds: stack-arg
// bytes for EvCallEnter, search steps for EvWindowSearch, bytes for
// EvCopy and EvIPC, invalidated entries for EvShootdown.
func (t *Tracer) Weight(k Kind) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.weights[k]
}

// EdgeCalls returns a copy of the per-edge call counts.
func (t *Tracer) EdgeCalls() map[Edge]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.edgeCallsLocked()
}

func (t *Tracer) edgeCallsLocked() map[Edge]uint64 {
	out := make(map[Edge]uint64, len(t.edgeCalls))
	for e, n := range t.edgeCalls {
		out[e] = n
	}
	return out
}

// EdgeSummary is one per-edge histogram digest.
type EdgeSummary struct {
	Edge Edge
	Hist Summary
}

// EdgeSummaries returns the per-edge call-latency digests sorted by
// descending call count (ties by edge).
func (t *Tracer) EdgeSummaries() []EdgeSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]EdgeSummary, 0, len(t.edgeHists))
	for e, h := range t.edgeHists {
		out = append(out, EdgeSummary{Edge: e, Hist: h.Summary()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hist.Count != out[j].Hist.Count {
			return out[i].Hist.Count > out[j].Hist.Count
		}
		if out[i].Edge.From != out[j].Edge.From {
			return out[i].Edge.From < out[j].Edge.From
		}
		return out[i].Edge.To < out[j].Edge.To
	})
	return out
}

// EdgeHist returns the latency histogram of one edge, or nil.
func (t *Tracer) EdgeHist(e Edge) *Hist {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.edgeHists[e]
}

// ClassHist returns the cycle-cost histogram of one event class, or nil
// if no event of that class carried a cost.
func (t *Tracer) ClassHist(k Kind) *Hist {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.classHist[k]
}

// Events returns the ring contents in chronological order. The slice
// aliases fresh copies; mutating it does not affect the tracer.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	capa := uint64(len(t.buf))
	if n <= capa {
		out := make([]Event, n)
		copy(out, t.buf[:n])
		return out
	}
	out := make([]Event, capa)
	start := n % capa
	copy(out, t.buf[start:])
	copy(out[capa-start:], t.buf[:start])
	return out
}

// Recorded returns the total number of events recorded (including those
// overwritten in the ring).
func (t *Tracer) Recorded() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Dropped returns how many events have been overwritten by ring wrap.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.droppedLocked()
}

func (t *Tracer) droppedLocked() uint64 {
	if capa := uint64(len(t.buf)); t.next > capa {
		return t.next - capa
	}
	return 0
}

// Counts is the flat event-count view of the trace, mirroring the legacy
// Stats counters so the two can be cross-checked field by field.
type Counts struct {
	CallsTotal        uint64
	SharedCalls       uint64
	Faults            uint64
	DeniedFaults      uint64
	Retags            uint64
	WRPKRUs           uint64
	WindowOps         uint64
	WindowSearchSteps uint64
	StackBytesCopied  uint64
	BulkBytesCopied   uint64
	KeyEvictions      uint64
	IPCMessages       uint64
	ContainedFaults   uint64
	Quarantines       uint64
	Restarts          uint64
	InjectedFaults    uint64
	Sheds             uint64
	DeadlineFaults    uint64
	QuotaFaults       uint64
	Retries           uint64
	// TLBShootdowns counts multi-core retag synchronisations;
	// TLBShootdownInvalidations sums the remote span-TLB entries they
	// cleared (the EvShootdown weight).
	TLBShootdowns             uint64
	TLBShootdownInvalidations uint64
	// TLBHits/TLBMisses/TLBInvalidations are the monitor's span-TLB
	// counters. They are not event-derived: a TLB hit is the hot path the
	// tracer exists to stay off of, so recording one event per hit would
	// defeat the cache. Instead the monitor registers a live source via
	// SetTLBCounters and Counts reads it at derivation time, keeping the
	// Stats-equality invariant exact.
	TLBHits          uint64
	TLBMisses        uint64
	TLBInvalidations uint64
	Calls            map[Edge]uint64
}

// SetTLBCounters installs the source of the monitor-maintained span-TLB
// counters mirrored into Counts (hits, misses, invalidations).
func (t *Tracer) SetTLBCounters(fn func() (hits, misses, invalidations uint64)) {
	t.tlbCounters = fn
}

// Counts derives the flat counters from the event stream.
func (t *Tracer) Counts() Counts {
	t.mu.Lock()
	defer t.mu.Unlock()
	var tlbHits, tlbMisses, tlbInval uint64
	if t.tlbCounters != nil {
		tlbHits, tlbMisses, tlbInval = t.tlbCounters()
	}
	return Counts{
		CallsTotal:                t.counts[EvCallEnter],
		SharedCalls:               t.counts[EvSharedCall],
		Faults:                    t.counts[EvFault],
		DeniedFaults:              t.counts[EvDeniedFault],
		Retags:                    t.counts[EvRetag],
		WRPKRUs:                   t.counts[EvWRPKRU],
		WindowOps:                 t.counts[EvWindowOp],
		WindowSearchSteps:         t.weights[EvWindowSearch],
		StackBytesCopied:          t.weights[EvCallEnter],
		BulkBytesCopied:           t.weights[EvCopy],
		KeyEvictions:              t.counts[EvKeyEviction],
		IPCMessages:               t.counts[EvIPC],
		ContainedFaults:           t.counts[EvContained],
		Quarantines:               t.counts[EvQuarantine],
		Restarts:                  t.counts[EvRestart],
		InjectedFaults:            t.counts[EvInjected],
		Sheds:                     t.counts[EvShed],
		DeadlineFaults:            t.counts[EvDeadline],
		QuotaFaults:               t.counts[EvQuota],
		Retries:                   t.counts[EvRetry],
		TLBShootdowns:             t.counts[EvShootdown],
		TLBShootdownInvalidations: t.weights[EvShootdown],
		TLBHits:                   tlbHits,
		TLBMisses:                 tlbMisses,
		TLBInvalidations:          tlbInval,
		Calls:                     t.edgeCallsLocked(),
	}
}

// itoa is strconv.Itoa for small non-negative ints without the import.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
