// Package trace is the observability layer of the simulated machine: a
// fixed-capacity ring of typed events stamped with the virtual cycle
// clock, streaming per-edge and per-event-class cycle histograms, and a
// virtual-clock profiler that attributes elapsed cycles to the cubicle
// executing when they were charged.
//
// The tracer is zero-dependency (it knows cubicles and threads only as
// integer IDs, resolved to names by a caller-installed namer) and is
// designed so that the *disabled* state costs the monitor exactly one nil
// check per hot-path event and zero allocations. When enabled, recording
// is allocation-free in steady state: the rings are preallocated, the
// histograms are fixed-size, and event labels are interned strings the
// instrumentation sites pass as constants.
//
// # Sharded recording
//
// Recording is lock-free: the tracer keeps one single-producer ring shard
// per simulated core, and every emission routes to the shard of the core
// the recording thread runs on (monitor-context events, thread -1, record
// on core 0 — the boot clock, exactly where clkOf(nil) charges them).
// Events are stamped with the recording core's virtual clock and a
// per-shard sequence number; no mutex or atomic is taken on the hot path.
// The safety argument mirrors the monitor's: on an SMP machine every
// emission site already runs under the monitor's big lock, and on a
// single-core machine there is only one goroutine, so shard state needs
// no synchronisation of its own. The report-building exporters
// (ChromeTrace, WritePrometheus, Snapshot, Profile, Events, Counts) are
// coordinator-only: call them after the run, with all workers quiescent.
//
// At export the per-shard streams merge into one deterministic stream
// ordered by (Cycle, Core, Seq): per-shard cycles are nondecreasing and
// per-shard sequence numbers strictly increasing, so the merge preserves
// every shard's internal order, is nondecreasing in GVT, and — because
// shard contents are deterministic under the monitor's deterministic
// scheduling — reproduces byte-identically across runs.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"

	"cubicleos/internal/cycles"
)

// Kind is the type of one trace event.
type Kind uint8

const (
	// EvCallEnter marks a cross-cubicle call entering its trampoline:
	// Cubicle is the caller, Other the callee, Arg the in-stack argument
	// bytes copied, Name the trampoline symbol.
	EvCallEnter Kind = iota
	// EvCallExit marks the matching return; Arg is the inclusive elapsed
	// cycles of the call.
	EvCallExit
	// EvSharedCall is a call into a shared cubicle (no TCB involvement).
	EvSharedCall
	// EvFault is a protection trap served by trap-and-map; Arg is the
	// faulting address and Cost the cycles spent in the handler.
	EvFault
	// EvDeniedFault is a protection trap no window authorised.
	EvDeniedFault
	// EvRetag is one page retag (pkey_mprotect); Arg is the page address,
	// Other the new key.
	EvRetag
	// EvWRPKRU is one wrpkru execution; Arg is the new PKRU value.
	EvWRPKRU
	// EvWindowOp is a window-management API call; Name is the operation
	// (init/add/remove/open/close/close_all/destroy/pin/unpin), Arg the
	// window ID.
	EvWindowOp
	// EvWindowSearch is one linear window-descriptor search; Arg is the
	// number of descriptor entries visited.
	EvWindowSearch
	// EvKeyEviction is an MPK key recycled by tag virtualisation; Other
	// is the evicted cubicle, Arg the physical key.
	EvKeyEviction
	// EvIPC is one message-passing call of the microkernel baselines;
	// Name is the operation, Arg the payload bytes marshalled.
	EvIPC
	// EvCopy is a checked bulk copy (memcpy/memset); Arg is the byte count.
	EvCopy
	// EvMark is an application-level marker (e.g. HTTP request lifecycle).
	EvMark
	// EvContained is a fault contained at a cross-cubicle call boundary:
	// Cubicle is the faulted (or refused) callee, Other the caller the
	// typed error was delivered to, Name the fault class.
	EvContained
	// EvQuarantine is a cubicle entering the Quarantined health state;
	// Arg is the backoff in virtual cycles before a restart is allowed.
	EvQuarantine
	// EvRestart is a supervisor restart of a quarantined cubicle; Arg is
	// the cubicle's lifetime restart count after this restart.
	EvRestart
	// EvInjected is one deterministic fault injection firing; Name is the
	// injection site/kind label.
	EvInjected
	// EvShed is a request refused by admission control: Cubicle is the
	// shedding cubicle, Name the reason label (e.g. conn_limit, quota),
	// Arg the HTTP status sent back (429/503).
	EvShed
	// EvDeadline is a crossing or work quantum abandoned because the
	// thread's virtual-clock deadline had passed; Cubicle is where the
	// expiry was detected, Arg the deadline, Cost how far past it the
	// clock was.
	EvDeadline
	// EvQuota is a memory-quota refusal: Cubicle is the cubicle whose
	// quota was exhausted, Name the resource label, Arg the attempted
	// usage, Cost the limit.
	EvQuota
	// EvRetry is one bounded-retry attempt after a transient contained
	// fault; Cubicle is the retrying caller, Arg the attempt number,
	// Cost the virtual-cycle backoff charged before it.
	EvRetry
	// EvShootdown is the TLB shootdown a page retag performs on a
	// multi-core machine (libmpk-style per-core key synchronisation):
	// Cubicle is the retagged page's owner, Arg the number of remote
	// span-TLB entries invalidated, Cost the synchronisation cycles
	// charged (ShootdownIPI per remote core). Single-core runs never
	// record one.
	EvShootdown
	// EvCheckpoint is one cubicle checkpoint captured at a quiescent
	// point: Cubicle is the checkpointed cubicle, Arg the encoded image
	// size in bytes, Cost the virtual cycles the capture charged.
	EvCheckpoint
	// EvWarmRestart is a supervisor restart that restored the cubicle's
	// last good checkpoint instead of rebuilding from empty; Arg is the
	// number of heap pages re-established. Every restart also records an
	// EvRestart, so Restarts == WarmRestarts + ColdRestarts.
	EvWarmRestart
	// EvColdRestart is a supervisor restart that rebuilt the cubicle from
	// empty (no checkpoint existed, or the restore failed and fell back);
	// Arg is 1 when a restore was attempted and failed, 0 otherwise.
	EvColdRestart
	// EvRoute is one cluster balancer routing decision that selected this
	// backend: Name is the policy label (hash/least), Other the backend
	// index in the cluster, Arg the request attempt number (0 = first).
	EvRoute
	// EvDrain is a cluster health-ladder transition for this backend:
	// Name is the phase ("drain" when the balancer stops routing to the
	// backend, "readmit" when it returns to rotation), Arg the drain
	// deadline in virtual cycles (0 on readmit).
	EvDrain
	// EvFailover is a request re-issued away from this backend: Name is
	// the reason label (retry/hedge/drain), Arg the attempt number of the
	// re-issue.
	EvFailover

	numKinds
)

var kindNames = [numKinds]string{
	EvCallEnter:    "call_enter",
	EvCallExit:     "call_exit",
	EvSharedCall:   "shared_call",
	EvFault:        "fault",
	EvDeniedFault:  "denied_fault",
	EvRetag:        "retag",
	EvWRPKRU:       "wrpkru",
	EvWindowOp:     "window_op",
	EvWindowSearch: "window_search",
	EvKeyEviction:  "key_eviction",
	EvIPC:          "ipc",
	EvCopy:         "copy",
	EvMark:         "mark",
	EvContained:    "contained",
	EvQuarantine:   "quarantine",
	EvRestart:      "restart",
	EvInjected:     "injected",
	EvShed:         "shed",
	EvDeadline:     "deadline",
	EvQuota:        "quota",
	EvRetry:        "retry",
	EvShootdown:    "shootdown",
	EvCheckpoint:   "checkpoint",
	EvWarmRestart:  "warm_restart",
	EvColdRestart:  "cold_restart",
	EvRoute:        "route",
	EvDrain:        "drain",
	EvFailover:     "failover",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one entry of a trace ring shard. Field meaning varies by Kind
// (see the Kind constants); Cycle is the recording core's virtual clock at
// record time, Core the shard the event was recorded on (0 on single-core
// machines and for monitor-context events), Seq the event's position in
// its shard's stream, Cost the cycles attributed to the event itself where
// that is meaningful (call elapsed, fault-handler span, IPC charge).
// The field order packs Event into exactly 64 bytes — one cache line per
// ring slot — which matters on the recording hot path: every emission
// rewrites one slot of a ring far larger than L1, so slot size is the
// dominant memory traffic per event.
type Event struct {
	Seq     uint64
	Cycle   uint64
	Arg     uint64
	Cost    uint64
	Name    string
	Thread  int32
	Cubicle int32
	Other   int32
	Core    int16
	Kind    Kind
}

// Edge is a directed caller→callee pair, the unit of per-edge histograms.
type Edge struct {
	From, To int32
}

// edgeDim bounds the flat per-edge arrays: cubicle IDs 0..edgeDim-1 index
// directly (MaxCubicles is 64, so every real deployment fits); anything
// outside falls back to an overflow map. Flat indexing keeps the hot-path
// edge bump to one array store instead of a map operation.
const edgeDim = 65

// flatSlot returns the flat-array slot of edge e, or -1 if either ID is
// outside the flat range.
func flatSlot(e Edge) int {
	if uint32(e.From) < edgeDim && uint32(e.To) < edgeDim {
		return int(e.From)*edgeDim + int(e.To)
	}
	return -1
}

// shard is one core's single-producer trace ring plus its streaming
// counters. Only the goroutine driving that core (under the monitor lock
// on SMP machines) ever writes it; exporters read it quiescently.
type shard struct {
	core  int16
	clock *cycles.Clock

	// Ring buffer: buf[seq & mask] for seq in [next-len, next).
	buf  []Event
	mask uint64
	next uint64

	counts  [numKinds]uint64
	weights [numKinds]uint64 // sum of Arg for weighted kinds

	edgeCalls     []uint64 // flat [edgeDim*edgeDim]
	edgeHists     []*Hist  // flat [edgeDim*edgeDim], lazily allocated
	overflowCalls map[Edge]uint64
	overflowHists map[Edge]*Hist
	classHist     [numKinds]*Hist // cycle cost distributions per event class

	prof profiler
}

func newShard(core int16, clock *cycles.Clock, ringCap int) *shard {
	s := &shard{
		core:      core,
		clock:     clock,
		buf:       make([]Event, ringCap),
		mask:      uint64(ringCap - 1),
		edgeCalls: make([]uint64, edgeDim*edgeDim),
		edgeHists: make([]*Hist, edgeDim*edgeDim),
	}
	s.prof.init(clock)
	return s
}

// weightedKind marks the kinds whose Arg accumulates into weights.
var weightedKind = [numKinds]bool{
	EvCallEnter: true, EvWindowSearch: true, EvCopy: true, EvIPC: true, EvShootdown: true,
	EvCheckpoint: true,
}

// record stamps one event and writes it in place into the shard's ring
// slot — scalar parameters keep the hot path free of Event struct copies
// (the fields travel in registers and land directly in the ring). It
// returns the cycle stamp so call sites reuse it.
func (s *shard) record(k Kind, thread, cubicle, other int32, arg, cost uint64, name string) uint64 {
	now := s.clock.Cycles()
	// Index with len-1 directly so the compiler elides the bounds check
	// (ring capacity is always a power of two).
	ev := &s.buf[s.next&uint64(len(s.buf)-1)]
	ev.Seq = s.next
	ev.Cycle = now
	ev.Kind = k
	ev.Thread = thread
	ev.Core = s.core
	ev.Cubicle = cubicle
	ev.Other = other
	ev.Arg = arg
	ev.Cost = cost
	ev.Name = name
	s.next++
	s.counts[k]++
	if weightedKind[k] {
		s.weights[k] += arg
	}
	if cost > 0 {
		s.observeClass(k, cost)
	}
	return now
}

// observeClass folds one cost observation into the event class histogram.
func (s *shard) observeClass(k Kind, cost uint64) {
	h := s.classHist[k]
	if h == nil {
		h = &Hist{}
		s.classHist[k] = h
	}
	h.Observe(cost)
}

// bumpEdge counts one call on edge e.
func (s *shard) bumpEdge(e Edge) {
	if i := flatSlot(e); i >= 0 {
		s.edgeCalls[i]++
		return
	}
	if s.overflowCalls == nil {
		s.overflowCalls = make(map[Edge]uint64)
	}
	s.overflowCalls[e]++
}

// observeEdge folds one elapsed-cycle observation into edge e's histogram.
func (s *shard) observeEdge(e Edge, elapsed uint64) {
	if i := flatSlot(e); i >= 0 {
		h := s.edgeHists[i]
		if h == nil {
			h = &Hist{}
			s.edgeHists[i] = h
		}
		h.Observe(elapsed)
		return
	}
	if s.overflowHists == nil {
		s.overflowHists = make(map[Edge]*Hist)
	}
	h := s.overflowHists[e]
	if h == nil {
		h = &Hist{}
		s.overflowHists[e] = h
	}
	h.Observe(elapsed)
}

// dropped is how many of the shard's events ring wrap has overwritten.
func (s *shard) dropped() uint64 {
	if capa := uint64(len(s.buf)); s.next > capa {
		return s.next - capa
	}
	return 0
}

// events returns the shard's ring contents in chronological order.
func (s *shard) events() []Event {
	n := s.next
	capa := uint64(len(s.buf))
	if n <= capa {
		out := make([]Event, n)
		copy(out, s.buf[:n])
		return out
	}
	out := make([]Event, capa)
	start := n & s.mask
	copy(out, s.buf[start:])
	copy(out[capa-start:], s.buf[:start])
	return out
}

// forEachEdge visits every edge with recorded calls or observations.
func (s *shard) forEachEdge(fn func(e Edge, calls uint64, h *Hist)) {
	for i, n := range s.edgeCalls {
		h := s.edgeHists[i]
		if n == 0 && h == nil {
			continue
		}
		fn(Edge{From: int32(i / edgeDim), To: int32(i % edgeDim)}, n, h)
	}
	for e, n := range s.overflowCalls {
		fn(e, n, nil)
	}
	for e, h := range s.overflowHists {
		fn(e, 0, h)
	}
}

// Tracer is the recording side of the observability layer: one ring shard
// per simulated core (see the package comment for the sharding and safety
// rules). All emission methods are lock-free; exporters and queries are
// coordinator-only.
type Tracer struct {
	clock *cycles.Clock // boot/GVT base clock (shard 0's clock)
	namer func(int) string
	// coreOf, when set (SetCores), resolves a recording thread to its
	// simulated core so its events land on that core's shard. Unset
	// (single-core), every event records on shard 0.
	coreOf func(thread int) int

	shards []*shard
	s0     *shard // shards[0], kept flat for the single-core fast path

	// open call spans per thread, for elapsed-cycle computation. Thread
	// IDs are dense. Each inner stack is written only by its own thread's
	// goroutine; the outer index is an immutable slice republished under
	// openGrow when a new thread ID appears, so concurrent recorders can
	// index it with a plain atomic load and no shared lock. openM holds
	// monitor-context (thread -1) spans, which only record while the
	// recording thread holds the monitor's global lock.
	open     atomic.Pointer[[]*openStack]
	openGrow sync.Mutex
	openM    []openCall

	// tlbCounters, when set, supplies the monitor's span-TLB gauges for
	// Counts (see SetTLBCounters).
	tlbCounters func() (hits, misses, invalidations uint64)
}

type openCall struct {
	edge  Edge
	start uint64
}

// openStack is one thread's stack of open call spans. Only that thread's
// goroutine pushes and pops, so the slice needs no lock of its own — the
// pointer indirection exists so the outer index can be republished while
// stacks stay in place.
type openStack struct {
	s []openCall
}

// stackOf returns thread's open-call stack, growing the outer index if
// this is the first event from that thread ID.
func (t *Tracer) stackOf(thread int) *openStack {
	if p := t.open.Load(); p != nil && thread < len(*p) {
		return (*p)[thread]
	}
	t.openGrow.Lock()
	defer t.openGrow.Unlock()
	var cur []*openStack
	if p := t.open.Load(); p != nil {
		cur = *p
	}
	if thread < len(cur) {
		return cur[thread]
	}
	grown := make([]*openStack, thread+1)
	copy(grown, cur)
	for i := len(cur); i < len(grown); i++ {
		grown[i] = &openStack{}
	}
	t.open.Store(&grown)
	return grown[thread]
}

// New creates a tracer over the given virtual clock with one ring shard of
// ringCap events (rounded up to a power of two, minimum 16). Multi-core
// machines attach further shards with SetCores.
func New(clock *cycles.Clock, ringCap int) *Tracer {
	if ringCap < 16 {
		ringCap = 16
	}
	capa := 16
	for capa < ringCap {
		capa <<= 1
	}
	t := &Tracer{clock: clock}
	t.s0 = newShard(0, clock, capa)
	t.shards = []*shard{t.s0}
	return t
}

// SetNamer installs the cubicle-ID → name resolver used by exporters.
func (t *Tracer) SetNamer(fn func(int) string) { t.namer = fn }

// SetCores reshards the tracer for a multi-core machine: shard i records
// with clks[i] (clks[0] must be the boot clock the tracer was created
// over), and coreOf routes a recording thread to its core. Install it at
// boot, before workers run; shard 0 keeps anything recorded so far. Each
// new shard gets its own ring of the same capacity, so per-core streams
// drop independently — and accountably — under overload.
func (t *Tracer) SetCores(clks []*cycles.Clock, coreOf func(thread int) int) {
	if len(clks) == 0 {
		return
	}
	t.coreOf = coreOf
	if clks[0] != t.s0.clock {
		t.s0.clock = clks[0]
		t.s0.prof.clock = clks[0]
		t.s0.prof.mark = clks[0].Cycles()
	}
	for i := 1; i < len(clks); i++ {
		if i < len(t.shards) {
			continue
		}
		s := newShard(int16(i), clks[i], len(t.s0.buf))
		if p := t.s0.prof.period; p != 0 {
			s.prof.period = p
			s.prof.nextSample = s.clock.Cycles() + p
			s.clock.SetOnAdvance(s.prof.tick)
		}
		t.shards = append(t.shards, s)
	}
}

// Cores returns the number of ring shards (1 unless SetCores ran).
func (t *Tracer) Cores() int { return len(t.shards) }

// Name resolves a cubicle ID to a display name.
func (t *Tracer) Name(id int) string {
	if t.namer != nil {
		if n := t.namer(id); n != "" {
			return n
		}
	}
	if id < 0 {
		return "runtime"
	}
	return "cubicle-" + itoa(id)
}

// shardFor routes a recording thread to its core's shard. Monitor-context
// events (thread < 0) record on shard 0, whose clock is the boot clock —
// the same clock monitor-context work charges. The single-core/monitor
// path is split out so shardFor inlines into the emission methods.
func (t *Tracer) shardFor(thread int) *shard {
	if t.coreOf == nil || thread < 0 {
		return t.s0
	}
	return t.shardForSlow(thread)
}

func (t *Tracer) shardForSlow(thread int) *shard {
	if c := t.coreOf(thread); c > 0 && c < len(t.shards) {
		return t.shards[c]
	}
	return t.s0
}

func (t *Tracer) pushOpen(thread int, oc openCall) {
	if thread < 0 {
		t.openM = append(t.openM, oc)
		return
	}
	stk := t.stackOf(thread)
	stk.s = append(stk.s, oc)
}

func (t *Tracer) popOpen(thread int) (openCall, bool) {
	stk := &t.openM
	if thread >= 0 {
		stk = &t.stackOf(thread).s
	}
	if n := len(*stk); n > 0 {
		oc := (*stk)[n-1]
		*stk = (*stk)[:n-1]
		return oc, true
	}
	return openCall{}, false
}

// CallEnter records a cross-cubicle call entering its trampoline and
// opens the span used to compute its elapsed cycles.
func (t *Tracer) CallEnter(thread, from, to int, sym string, stackBytes uint64) {
	s := t.shardFor(thread)
	e := Edge{From: int32(from), To: int32(to)}
	s.bumpEdge(e)
	now := s.record(EvCallEnter, int32(thread), int32(from), int32(to), stackBytes, 0, sym)
	t.pushOpen(thread, openCall{edge: e, start: now})
}

// CallExit records the return of the innermost open call on thread,
// observing its inclusive elapsed cycles into the per-edge histogram.
func (t *Tracer) CallExit(thread, from, to int, sym string) {
	s := t.shardFor(thread)
	var elapsed uint64
	if oc, ok := t.popOpen(thread); ok {
		elapsed = s.clock.Cycles() - oc.start
		s.observeEdge(oc.edge, elapsed)
	}
	s.record(EvCallExit, int32(thread), int32(from), int32(to), elapsed, elapsed, sym)
}

// SharedCall records a call into a shared cubicle.
func (t *Tracer) SharedCall(thread, cur, callee int, sym string) {
	t.shardFor(thread).record(EvSharedCall, int32(thread), int32(cur), int32(callee), 0, 0, sym)
}

// Fault records a protection trap served by trap-and-map; elapsed is the
// cycles the handler charged.
func (t *Tracer) Fault(thread, cur, owner int, addr, elapsed uint64) {
	t.shardFor(thread).record(EvFault, int32(thread), int32(cur), int32(owner), addr, elapsed, "")
}

// DeniedFault records a protection trap that no window authorised.
func (t *Tracer) DeniedFault(thread, cur, owner int, addr uint64) {
	t.shardFor(thread).record(EvDeniedFault, int32(thread), int32(cur), int32(owner), addr, 0, "")
}

// Retag records one page retag to the given key on behalf of thread
// (-1 for monitor-context retags such as key evictions and pin rollback).
func (t *Tracer) Retag(thread, cur int, addr uint64, key uint8) {
	t.shardFor(thread).record(EvRetag, int32(thread), int32(cur), int32(key), addr, 0, "")
}

// Shootdown records the TLB shootdown a retag performs on a multi-core
// machine: cleared is the number of remote span-TLB entries invalidated,
// cost the synchronisation cycles charged.
func (t *Tracer) Shootdown(thread, cur int, cleared, cost uint64) {
	t.shardFor(thread).record(EvShootdown, int32(thread), int32(cur), 0, cleared, cost, "")
}

// WRPKRU records one wrpkru execution.
func (t *Tracer) WRPKRU(thread, cur int, pkru uint64) {
	t.shardFor(thread).record(EvWRPKRU, int32(thread), int32(cur), 0, pkru, 0, "")
}

// WindowOp records one window-management API call by cubicle cur on
// behalf of thread (-1 for monitor-context window work).
func (t *Tracer) WindowOp(thread, cur int, op string, wid int) {
	t.shardFor(thread).record(EvWindowOp, int32(thread), int32(cur), 0, uint64(wid), 0, op)
}

// WindowSearch records one linear window-descriptor search of the trap
// handler; steps is the number of descriptor entries visited.
func (t *Tracer) WindowSearch(thread, cur int, steps uint64) {
	t.shardFor(thread).record(EvWindowSearch, int32(thread), int32(cur), 0, steps, 0, "")
}

// KeyEviction records an MPK key recycled away from cubicle victim.
func (t *Tracer) KeyEviction(victim int, key uint8) {
	t.s0.record(EvKeyEviction, -1, int32(victim), int32(key), uint64(key), 0, "")
}

// IPC records one message-passing call of a microkernel baseline.
func (t *Tracer) IPC(thread, cur int, op string, bytes, cost uint64) {
	t.shardFor(thread).record(EvIPC, int32(thread), int32(cur), 0, bytes, cost, op)
}

// Copy records a checked bulk copy of n bytes by thread.
func (t *Tracer) Copy(thread, cur int, n uint64) {
	t.shardFor(thread).record(EvCopy, int32(thread), int32(cur), 0, n, 0, "")
}

// Mark records an application-level marker. Label should be a constant
// string so that recording stays allocation-free.
func (t *Tracer) Mark(thread, cur int, label string) {
	t.shardFor(thread).record(EvMark, int32(thread), int32(cur), 0, 0, 0, label)
}

// Contained records a fault contained at a crossing: callee is the cubicle
// whose fault was converted into a typed error, caller the cubicle it was
// delivered to, class the fault class label (a constant string).
func (t *Tracer) Contained(thread, callee, caller int, class string) {
	t.shardFor(thread).record(EvContained, int32(thread), int32(callee), int32(caller), 0, 0, class)
}

// Quarantine records cubicle id entering quarantine with the given backoff
// in virtual cycles.
func (t *Tracer) Quarantine(id int, backoff uint64) {
	t.s0.record(EvQuarantine, -1, int32(id), 0, backoff, 0, "")
}

// Restart records a supervisor restart of cubicle id; count is the
// cubicle's lifetime restart count including this one.
func (t *Tracer) Restart(id int, count uint64) {
	t.s0.record(EvRestart, -1, int32(id), 0, count, 0, "")
}

// Checkpoint records one cubicle checkpoint captured at a quiescent
// point; size is the encoded image in bytes, cost the virtual cycles the
// capture charged. Checkpoints are monitor-context work: shard 0.
func (t *Tracer) Checkpoint(id int, size, cost uint64) {
	t.s0.record(EvCheckpoint, -1, int32(id), 0, size, cost, "")
}

// WarmRestart records a supervisor restart that restored cubicle id from
// its last good checkpoint; pages is the number of heap pages
// re-established. Recorded in addition to the EvRestart for the restart.
func (t *Tracer) WarmRestart(id int, pages uint64) {
	t.s0.record(EvWarmRestart, -1, int32(id), 0, pages, 0, "")
}

// ColdRestart records a supervisor restart that rebuilt cubicle id from
// empty; failedRestore is 1 when a checkpoint restore was attempted and
// fell back, 0 when no checkpoint existed.
func (t *Tracer) ColdRestart(id int, failedRestore uint64) {
	t.s0.record(EvColdRestart, -1, int32(id), 0, failedRestore, 0, "")
}

// Route records one cluster balancer routing decision that selected
// backend; policy is the balancer policy label (a constant string) and
// attempt the request attempt number (0 = first try). Routing decisions
// are balancer-context work, recorded on the backend's shard 0.
func (t *Tracer) Route(policy string, backend int, attempt uint64) {
	t.s0.record(EvRoute, -1, int32(backend), 0, attempt, 0, policy)
}

// Drain records a cluster health-ladder transition for backend: phase is
// "drain" when the balancer takes it out of rotation, "readmit" when it
// returns; deadline is the drain deadline in virtual cycles (0 on
// readmit).
func (t *Tracer) Drain(phase string, backend int, deadline uint64) {
	t.s0.record(EvDrain, -1, int32(backend), 0, deadline, 0, phase)
}

// Failover records a request re-issued away from backend; reason is the
// constant label (retry/hedge/drain) and attempt the attempt number of
// the re-issue.
func (t *Tracer) Failover(reason string, backend int, attempt uint64) {
	t.s0.record(EvFailover, -1, int32(backend), 0, attempt, 0, reason)
}

// Injected records one deterministic fault injection against cubicle cub
// at the named site (a constant string).
func (t *Tracer) Injected(cub int, site string) {
	t.s0.record(EvInjected, -1, int32(cub), 0, 0, 0, site)
}

// Shed records a request refused by admission control in cubicle cub on
// behalf of thread; reason is a constant label and status the HTTP status
// sent back.
func (t *Tracer) Shed(thread, cub int, reason string, status uint64) {
	t.shardFor(thread).record(EvShed, int32(thread), int32(cub), 0, status, 0, reason)
}

// DeadlineMiss records work abandoned in cubicle cub because the thread's
// deadline had passed; now is the clock at detection time.
func (t *Tracer) DeadlineMiss(thread, cub int, deadline, now uint64) {
	var over uint64
	if now > deadline {
		over = now - deadline
	}
	t.shardFor(thread).record(EvDeadline, int32(thread), int32(cub), 0, deadline, over, "")
}

// QuotaHit records a memory-quota refusal for cubicle cub on the named
// resource (a constant string); used is the attempted usage, limit the cap.
func (t *Tracer) QuotaHit(thread, cub int, resource string, used, limit uint64) {
	t.shardFor(thread).record(EvQuota, int32(thread), int32(cub), 0, used, limit, resource)
}

// Retry records one bounded-retry attempt by cubicle cub after a transient
// contained fault; backoff is the virtual-cycle penalty charged before it.
func (t *Tracer) Retry(thread, cub int, attempt, backoff uint64) {
	t.shardFor(thread).record(EvRetry, int32(thread), int32(cub), 0, attempt, backoff, "")
}

// --- Queries -----------------------------------------------------------------

// Count returns the number of events of kind k recorded so far (streaming;
// unaffected by ring overwrites), summed over shards.
func (t *Tracer) Count(k Kind) uint64 {
	var n uint64
	for _, s := range t.shards {
		n += s.counts[k]
	}
	return n
}

// Weight returns the accumulated Arg sum for weighted kinds: stack-arg
// bytes for EvCallEnter, search steps for EvWindowSearch, bytes for
// EvCopy and EvIPC, invalidated entries for EvShootdown.
func (t *Tracer) Weight(k Kind) uint64 {
	var n uint64
	for _, s := range t.shards {
		n += s.weights[k]
	}
	return n
}

// EdgeCalls returns a copy of the per-edge call counts, merged over shards.
func (t *Tracer) EdgeCalls() map[Edge]uint64 {
	out := make(map[Edge]uint64)
	for _, s := range t.shards {
		s.forEachEdge(func(e Edge, calls uint64, _ *Hist) {
			if calls > 0 {
				out[e] += calls
			}
		})
	}
	return out
}

// edgeHistsMerged merges the per-shard edge histograms. With one shard the
// returned map aliases the live histograms; exporters only read.
func (t *Tracer) edgeHistsMerged() map[Edge]*Hist {
	out := make(map[Edge]*Hist)
	for _, s := range t.shards {
		s.forEachEdge(func(e Edge, _ uint64, h *Hist) {
			if h == nil || h.Count() == 0 {
				return
			}
			if len(t.shards) == 1 {
				out[e] = h
				return
			}
			m := out[e]
			if m == nil {
				m = &Hist{}
				out[e] = m
			}
			m.Merge(h)
		})
	}
	return out
}

// EdgeSummary is one per-edge histogram digest.
type EdgeSummary struct {
	Edge Edge
	Hist Summary
}

// EdgeSummaries returns the per-edge call-latency digests sorted by
// descending call count (ties by edge).
func (t *Tracer) EdgeSummaries() []EdgeSummary {
	hists := t.edgeHistsMerged()
	out := make([]EdgeSummary, 0, len(hists))
	for e, h := range hists {
		out = append(out, EdgeSummary{Edge: e, Hist: h.Summary()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hist.Count != out[j].Hist.Count {
			return out[i].Hist.Count > out[j].Hist.Count
		}
		if out[i].Edge.From != out[j].Edge.From {
			return out[i].Edge.From < out[j].Edge.From
		}
		return out[i].Edge.To < out[j].Edge.To
	})
	return out
}

// EdgeHist returns the latency histogram of one edge (merged over shards),
// or nil if the edge has no observations.
func (t *Tracer) EdgeHist(e Edge) *Hist {
	var merged *Hist
	for _, s := range t.shards {
		var h *Hist
		if i := flatSlot(e); i >= 0 {
			h = s.edgeHists[i]
		} else {
			h = s.overflowHists[e]
		}
		if h == nil || h.Count() == 0 {
			continue
		}
		if len(t.shards) == 1 {
			return h
		}
		if merged == nil {
			merged = &Hist{}
		}
		merged.Merge(h)
	}
	return merged
}

// ClassHist returns the cycle-cost histogram of one event class (merged
// over shards), or nil if no event of that class carried a cost.
func (t *Tracer) ClassHist(k Kind) *Hist {
	var merged *Hist
	for _, s := range t.shards {
		h := s.classHist[k]
		if h == nil || h.Count() == 0 {
			continue
		}
		if len(t.shards) == 1 {
			return h
		}
		if merged == nil {
			merged = &Hist{}
		}
		merged.Merge(h)
	}
	return merged
}

// Events returns the surviving ring contents of all shards merged into one
// stream ordered by (Cycle, Core, Seq) — deterministic, nondecreasing in
// GVT, and order-preserving within every shard. The slice holds fresh
// copies; mutating it does not affect the tracer.
func (t *Tracer) Events() []Event {
	if len(t.shards) == 1 {
		return t.s0.events()
	}
	var out []Event
	for _, s := range t.shards {
		out = append(out, s.events()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycle != out[j].Cycle {
			return out[i].Cycle < out[j].Cycle
		}
		if out[i].Core != out[j].Core {
			return out[i].Core < out[j].Core
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// ShardEvents returns one shard's surviving ring contents in order.
func (t *Tracer) ShardEvents(core int) []Event {
	if core < 0 || core >= len(t.shards) {
		return nil
	}
	return t.shards[core].events()
}

// Recorded returns the total number of events recorded across all shards
// (including those overwritten in the rings).
func (t *Tracer) Recorded() uint64 {
	var n uint64
	for _, s := range t.shards {
		n += s.next
	}
	return n
}

// Dropped returns how many events have been overwritten by ring wrap,
// summed over shards. Bounded rings never lose events silently: every
// overwrite is counted here and per shard in ShardDropped.
func (t *Tracer) Dropped() uint64 {
	var n uint64
	for _, s := range t.shards {
		n += s.dropped()
	}
	return n
}

// ShardRecorded returns how many events shard core has recorded.
func (t *Tracer) ShardRecorded(core int) uint64 {
	if core < 0 || core >= len(t.shards) {
		return 0
	}
	return t.shards[core].next
}

// ShardDropped returns how many of shard core's events ring wrap overwrote.
func (t *Tracer) ShardDropped(core int) uint64 {
	if core < 0 || core >= len(t.shards) {
		return 0
	}
	return t.shards[core].dropped()
}

// MaxCycles is global virtual time as the tracer sees it: the maximum over
// shard clocks (the boot clock on a single-core machine).
func (t *Tracer) MaxCycles() uint64 {
	max := uint64(0)
	for _, s := range t.shards {
		if v := s.clock.Cycles(); v > max {
			max = v
		}
	}
	return max
}

// Counts is the flat event-count view of the trace, mirroring the legacy
// Stats counters so the two can be cross-checked field by field.
type Counts struct {
	CallsTotal        uint64
	SharedCalls       uint64
	Faults            uint64
	DeniedFaults      uint64
	Retags            uint64
	WRPKRUs           uint64
	WindowOps         uint64
	WindowSearchSteps uint64
	StackBytesCopied  uint64
	BulkBytesCopied   uint64
	KeyEvictions      uint64
	IPCMessages       uint64
	ContainedFaults   uint64
	Quarantines       uint64
	Restarts          uint64
	InjectedFaults    uint64
	Sheds             uint64
	DeadlineFaults    uint64
	QuotaFaults       uint64
	Retries           uint64
	// TLBShootdowns counts multi-core retag synchronisations;
	// TLBShootdownInvalidations sums the remote span-TLB entries they
	// cleared (the EvShootdown weight).
	TLBShootdowns             uint64
	TLBShootdownInvalidations uint64
	// Checkpoints counts captured cubicle checkpoints; CheckpointBytes
	// sums their encoded sizes (the EvCheckpoint weight). WarmRestarts and
	// ColdRestarts split Restarts by recovery path.
	Checkpoints     uint64
	CheckpointBytes uint64
	WarmRestarts    uint64
	ColdRestarts    uint64
	// Routes counts cluster balancer decisions that selected this system
	// as the backend; Drains counts its balancer health-ladder
	// transitions (drain + readmit); Failovers counts requests re-issued
	// away from it (retry/hedge/drain).
	Routes    uint64
	Drains    uint64
	Failovers uint64
	// TLBHits/TLBMisses/TLBInvalidations are the monitor's span-TLB
	// counters. They are not event-derived: a TLB hit is the hot path the
	// tracer exists to stay off of, so recording one event per hit would
	// defeat the cache. Instead the monitor registers a live source via
	// SetTLBCounters and Counts reads it at derivation time, keeping the
	// Stats-equality invariant exact.
	TLBHits          uint64
	TLBMisses        uint64
	TLBInvalidations uint64
	Calls            map[Edge]uint64
}

// SetTLBCounters installs the source of the monitor-maintained span-TLB
// counters mirrored into Counts (hits, misses, invalidations).
func (t *Tracer) SetTLBCounters(fn func() (hits, misses, invalidations uint64)) {
	t.tlbCounters = fn
}

// Counts derives the flat counters from the event stream, summed over
// shards.
func (t *Tracer) Counts() Counts {
	var counts, weights [numKinds]uint64
	for _, s := range t.shards {
		for k := 0; k < int(numKinds); k++ {
			counts[k] += s.counts[k]
			weights[k] += s.weights[k]
		}
	}
	var tlbHits, tlbMisses, tlbInval uint64
	if t.tlbCounters != nil {
		tlbHits, tlbMisses, tlbInval = t.tlbCounters()
	}
	return Counts{
		CallsTotal:                counts[EvCallEnter],
		SharedCalls:               counts[EvSharedCall],
		Faults:                    counts[EvFault],
		DeniedFaults:              counts[EvDeniedFault],
		Retags:                    counts[EvRetag],
		WRPKRUs:                   counts[EvWRPKRU],
		WindowOps:                 counts[EvWindowOp],
		WindowSearchSteps:         weights[EvWindowSearch],
		StackBytesCopied:          weights[EvCallEnter],
		BulkBytesCopied:           weights[EvCopy],
		KeyEvictions:              counts[EvKeyEviction],
		IPCMessages:               counts[EvIPC],
		ContainedFaults:           counts[EvContained],
		Quarantines:               counts[EvQuarantine],
		Restarts:                  counts[EvRestart],
		InjectedFaults:            counts[EvInjected],
		Sheds:                     counts[EvShed],
		DeadlineFaults:            counts[EvDeadline],
		QuotaFaults:               counts[EvQuota],
		Retries:                   counts[EvRetry],
		TLBShootdowns:             counts[EvShootdown],
		TLBShootdownInvalidations: weights[EvShootdown],
		Checkpoints:               counts[EvCheckpoint],
		CheckpointBytes:           weights[EvCheckpoint],
		WarmRestarts:              counts[EvWarmRestart],
		ColdRestarts:              counts[EvColdRestart],
		Routes:                    counts[EvRoute],
		Drains:                    counts[EvDrain],
		Failovers:                 counts[EvFailover],
		TLBHits:                   tlbHits,
		TLBMisses:                 tlbMisses,
		TLBInvalidations:          tlbInval,
		Calls:                     t.EdgeCalls(),
	}
}

// itoa is strconv.Itoa for small non-negative ints without the import.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
