// Package ukernel implements the paper's component-based baselines
// (§6.5): the same library OS components deployed behind message-based
// interfaces, as Genode arranges them on seL4, Fiasco.OC, NOVA, or the
// Linux kernel. Every cross-component call becomes a synchronous IPC: the
// arguments are marshalled into a message (payload buffers are copied —
// message interfaces cannot pass pointers), the kernel switches to the
// callee, the dispatcher unpacks and runs the operation, and the reply
// (with any out-payload) is copied back. This is exactly the
// data-marshalling + context-switch overhead of Figure 1b that CubicleOS'
// windows avoid.
package ukernel

import (
	"fmt"

	"cubicleos/internal/boot"
	"cubicleos/internal/cubicle"
	"cubicleos/internal/cycles"
	"cubicleos/internal/ramfs"
	"cubicleos/internal/vfscore"
)

// KernelModel parameterises the per-IPC costs of one kernel as deployed
// under the Genode framework (version 20.05 in the paper). Two boundaries
// have very different prices: the application reaches the Core/VFS module
// through Genode's libc VFS plugin over a shared-memory session (cheap),
// while a separated file-system backend is reached through Genode's
// file-system session protocol — a full per-operation RPC with packet
// marshalling and server thread scheduling (expensive). That asymmetry is
// exactly why the paper's Figure 10 shows Genode-3 at only 1.4× Linux but
// Genode-4 (RAMFS separated) at 29×.
type KernelModel struct {
	Name string
	// AppCallCycles is one application→Core VFS call via the libc
	// plugin / shared-memory session path.
	AppCallCycles uint64
	// BackendCallCycles is one Core→backend file-system-session RPC
	// round trip: kernel IPC both ways, packet allocation, framework
	// dispatch, server thread wakeup.
	BackendCallCycles uint64
	// CopyChunk16 is the marshalling copy cost per 16 payload bytes,
	// paid once into the message and once out of it per direction.
	CopyChunk16 uint64
}

// Kernel models, calibrated so the Figure 10b separation slowdowns land
// near the paper's (seL4 7.5×, Fiasco.OC 4.5×, NOVA 4.7×, Genode/Linux
// ≈20×, the paper's Figure 10a 29/1.4). EXPERIMENTS.md records the
// calibration method.
var (
	SeL4        = KernelModel{Name: "SeL4", AppCallCycles: 2000, BackendCallCycles: 54000, CopyChunk16: 2}
	FiascoOC    = KernelModel{Name: "Fiasco.OC", AppCallCycles: 1800, BackendCallCycles: 28000, CopyChunk16: 2}
	NOVA        = KernelModel{Name: "NOVA", AppCallCycles: 1850, BackendCallCycles: 30000, CopyChunk16: 2}
	GenodeLinux = KernelModel{Name: "Genode/Linux", AppCallCycles: 2000, BackendCallCycles: 125000, CopyChunk16: 3}
)

// Models lists the microkernel models of Figure 10b.
var Models = []KernelModel{SeL4, FiascoOC, NOVA, GenodeLinux}

// payloadSpec describes the buffer arguments of one operation: which
// argument is the buffer pointer, which carries the length, and the copy
// direction(s).
type payloadSpec struct {
	lenArg int // -1: no payload
	in     bool
	out    bool
	// outLenFromRet: actual out-copy length is the first result word
	// (e.g. bytes read).
	outLenFromRet bool
}

// vfsSpecs describes the application→VFS RPC interface.
var vfsSpecs = map[string]payloadSpec{
	"vfs_open":      {lenArg: 1, in: true},
	"vfs_close":     {lenArg: -1},
	"vfs_read":      {lenArg: 2, out: true, outLenFromRet: true},
	"vfs_write":     {lenArg: 2, in: true},
	"vfs_pread":     {lenArg: 2, out: true, outLenFromRet: true},
	"vfs_pwrite":    {lenArg: 2, in: true},
	"vfs_lseek":     {lenArg: -1},
	"vfs_stat":      {lenArg: 1, in: true},
	"vfs_fstat":     {lenArg: -1},
	"vfs_ftruncate": {lenArg: -1},
	"vfs_fsync":     {lenArg: -1},
	"vfs_unlink":    {lenArg: 1, in: true},
	"vfs_mkdir":     {lenArg: 1, in: true},
	"vfs_readdir":   {lenArg: 1, in: true, out: true, outLenFromRet: true},
	"vfs_rename":    {lenArg: 1, in: true},
}

// backendSpecs describes the VFS→backend RPC interface.
var backendSpecs = map[string]payloadSpec{
	"lookup":  {lenArg: 1, in: true},
	"create":  {lenArg: 1, in: true},
	"read":    {lenArg: 3, out: true, outLenFromRet: true},
	"write":   {lenArg: 3, in: true},
	"getsize": {lenArg: -1},
	"setsize": {lenArg: -1},
	"unlink":  {lenArg: 1, in: true},
	"mkdir":   {lenArg: 1, in: true},
	"readdir": {lenArg: 3, out: true, outLenFromRet: true},
	"fsync":   {lenArg: -1},
	"rename":  {lenArg: 1, in: true},
}

// Stats counts IPC activity.
type Stats struct {
	Calls       uint64
	BytesCopied uint64
}

// ipcCall wraps an entry point with message-passing costs.
type ipcCall struct {
	inner vfscore.Caller
	model KernelModel
	spec  payloadSpec
	name  string // operation name, for trace events
	cost  uint64 // per-call IPC cost of this boundary
	mon   *cubicle.Monitor
	stats *Stats
}

// Call marshals, switches, dispatches and replies.
func (c ipcCall) Call(e *cubicle.Env, args ...uint64) []uint64 {
	c.stats.Calls++
	clock := c.mon.Clock
	clock.Charge(c.cost)
	overhead := c.cost
	// In-payload: copy into the message at the caller, out of it at the
	// callee (two copies).
	var payload uint64
	if c.spec.lenArg >= 0 && c.spec.in {
		n := args[c.spec.lenArg]
		copyCost := ((n + 15) / 16) * c.model.CopyChunk16 * 2
		clock.Charge(copyCost)
		overhead += copyCost
		c.stats.BytesCopied += 2 * n
		payload += 2 * n
	}
	rets := c.inner.Call(e, args...)
	// Out-payload: copy into the reply message and out at the caller.
	if c.spec.lenArg >= 0 && c.spec.out {
		n := args[c.spec.lenArg]
		if c.spec.outLenFromRet && len(rets) > 0 && rets[0] < n {
			n = rets[0]
		}
		copyCost := ((n + 15) / 16) * c.model.CopyChunk16 * 2
		clock.Charge(copyCost)
		overhead += copyCost
		c.stats.BytesCopied += 2 * n
		payload += 2 * n
	}
	if trc := c.mon.Tracer(); trc != nil {
		trc.IPC(e.T.TID(), int(e.Cubicle()), c.name, payload, overhead)
	}
	return rets
}

// Deployment is a booted message-passing system in the Figure 9 shape.
type Deployment struct {
	Sys   *boot.System
	Model KernelModel
	// Components is 3 (SQLITE, CORE incl. RAMFS, TIMER) or 4 (RAMFS
	// separated from CORE) — Figure 9a/9b.
	Components int
	Stats      Stats
	// VFS is the application's IPC-wrapped VFS client.
	VFS *vfscore.Client
}

// NewSQLite boots the paper's SQLite partitioning experiment on a
// message-passing kernel: the same components as the CubicleOS
// deployment, but with IPC-marshalled boundaries instead of windows. The
// appName component is added as the application compartment.
func NewSQLite(model KernelModel, components int, app *cubicle.Component) (*Deployment, error) {
	if components != 3 && components != 4 {
		return nil, fmt.Errorf("ukernel: components must be 3 or 4 (Figure 9)")
	}
	// The underlying machine runs without MPK (address-space isolation
	// is the kernel's job here); all isolation cost comes from IPC.
	sys, err := boot.NewFS(boot.Config{
		Mode:   cubicle.ModeUnikraft,
		Groups: map[string]string{vfscore.Name: "CORE", ramfs.Name: "CORE"},
		Extra:  []*cubicle.Component{app},
	})
	if err != nil {
		return nil, err
	}
	d := &Deployment{Sys: sys, Model: model, Components: components}
	// Genode's components are native, optimised code: the Core VFS and
	// RAMFS server path lengths are Linux-like, not Unikraft-like.
	sys.VFS.SetOpWork(linuxVFSWork)
	sys.Ramfs.SetOpWork(linuxRamfsWork)

	wrap := func(specs map[string]payloadSpec, cost uint64) func(string, vfscore.Caller) vfscore.Caller {
		return func(name string, inner vfscore.Caller) vfscore.Caller {
			spec, ok := specs[name]
			if !ok {
				spec = payloadSpec{lenArg: -1}
			}
			return ipcCall{inner: inner, model: model, spec: spec, name: name, cost: cost, mon: sys.M, stats: &d.Stats}
		}
	}

	// Application → CORE boundary is always an IPC.
	d.VFS = vfscore.NewClient(sys.M, sys.Cubs[app.Name].ID)
	d.VFS.Wrap(wrap(vfsSpecs, model.AppCallCycles))

	// CORE → RAMFS boundary becomes an IPC only in the 4-component
	// configuration (Figure 9b separates the RAMFS driver).
	backend := ramfs.BackendTable(sys.M, sys.Cubs[vfscore.Name].ID)
	if components == 4 {
		backend = vfscore.WrapBackend(backend, wrap(backendSpecs, model.BackendCallCycles))
	}
	sys.VFS.SetBackend(backend)
	return d, nil
}

// LinuxDeployment models the paper's Linux baseline: the application
// calls a monolithic, highly optimised kernel via plain system calls.
type LinuxDeployment struct {
	Sys *boot.System
	VFS *vfscore.Client
	// Syscalls counts kernel entries.
	Syscalls uint64
}

// Linux path costs: a monolithic kernel's VFS+tmpfs path is much shorter
// than Unikraft 0.4's vfscore+ramfs (the paper measures Unikraft at 2.8×
// Linux for speedtest1).
const (
	linuxVFSWork   = 150
	linuxRamfsWork = 100
)

// NewLinuxSQLite boots the Linux baseline.
func NewLinuxSQLite(app *cubicle.Component) (*LinuxDeployment, error) {
	sys, err := boot.NewFS(boot.Config{
		Mode:   cubicle.ModeUnikraft,
		Groups: map[string]string{vfscore.Name: "KERNEL", ramfs.Name: "KERNEL"},
		Extra:  []*cubicle.Component{app},
	})
	if err != nil {
		return nil, err
	}
	sys.VFS.SetOpWork(linuxVFSWork)
	sys.Ramfs.SetOpWork(linuxRamfsWork)
	d := &LinuxDeployment{Sys: sys}
	d.VFS = vfscore.NewClient(sys.M, sys.Cubs[app.Name].ID)
	costs := sys.M.Costs
	d.VFS.Wrap(func(name string, inner vfscore.Caller) vfscore.Caller {
		return syscallCall{inner: inner, clock: sys.M.Clock, cost: costs.SyscallLinux, count: &d.Syscalls}
	})
	return d, nil
}

// syscallCall charges one kernel entry/exit per operation.
type syscallCall struct {
	inner vfscore.Caller
	clock *cycles.Clock
	cost  uint64
	count *uint64
}

func (c syscallCall) Call(e *cubicle.Env, args ...uint64) []uint64 {
	*c.count++
	c.clock.Charge(c.cost)
	return c.inner.Call(e, args...)
}
