package ukernel_test

import (
	"testing"

	"cubicleos/internal/cubicle"
	"cubicleos/internal/sqldb"
	"cubicleos/internal/ukernel"
	"cubicleos/internal/vfscore"
)

func appComponent() *cubicle.Component {
	return &cubicle.Component{
		Name: "SQLITE", Kind: cubicle.KindIsolated,
		Exports: []cubicle.ExportDecl{{Name: "sqlite_main",
			Fn: func(e *cubicle.Env, a []uint64) []uint64 { return nil }}},
	}
}

// runWorkload opens a DB through the deployment's VFS and performs a
// fixed mix of statements, returning consumed cycles.
func runWorkload(t *testing.T, sys interface {
	RunAs(string, func(e *cubicle.Env)) error
}, vfs *vfscore.Client, clock interface{ Cycles() uint64 }) uint64 {
	t.Helper()
	start := clock.Cycles()
	err := sys.RunAs("SQLITE", func(e *cubicle.Env) {
		vfs.InitBuffers(e, e.CubicleOf("RAMFS"))
		ioBuf := e.HeapAlloc(sqldb.PageSize)
		db, err := sqldb.Open(e, vfs, "/uk.db", ioBuf, 32)
		if err != nil {
			t.Fatal(err)
		}
		db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
		db.MustExec("BEGIN")
		for i := 0; i < 200; i++ {
			db.MustExec("INSERT INTO t VALUES (" + itoa(i) + ", 'value')")
		}
		db.MustExec("COMMIT")
		for i := 0; i < 50; i++ {
			db.MustExec("UPDATE t SET v = 'x' WHERE id = " + itoa(i*3))
		}
		db.MustExec("SELECT count(*) FROM t")
	})
	if err != nil {
		t.Fatal(err)
	}
	return clock.Cycles() - start
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

func TestSeparationCostsMoreOnEveryKernel(t *testing.T) {
	for _, model := range ukernel.Models {
		d3, err := ukernel.NewSQLite(model, 3, appComponent())
		if err != nil {
			t.Fatal(err)
		}
		c3 := runWorkload(t, d3.Sys, d3.VFS, d3.Sys.M.Clock)
		d4, err := ukernel.NewSQLite(model, 4, appComponent())
		if err != nil {
			t.Fatal(err)
		}
		c4 := runWorkload(t, d4.Sys, d4.VFS, d4.Sys.M.Clock)
		if c4 <= c3 {
			t.Errorf("%s: 4 compartments (%d) not more expensive than 3 (%d)", model.Name, c4, c3)
		}
		if d4.Stats.Calls <= d3.Stats.Calls {
			t.Errorf("%s: separation did not add IPC calls", model.Name)
		}
		if d4.Stats.BytesCopied == 0 {
			t.Errorf("%s: message interface copied no payload bytes", model.Name)
		}
	}
}

func TestKernelOrdering(t *testing.T) {
	// Per-call costs must order as in Figure 10b: Genode/Linux most
	// expensive backend, Fiasco.OC cheapest.
	costs := map[string]uint64{}
	for _, model := range ukernel.Models {
		d, err := ukernel.NewSQLite(model, 4, appComponent())
		if err != nil {
			t.Fatal(err)
		}
		costs[model.Name] = runWorkload(t, d.Sys, d.VFS, d.Sys.M.Clock)
	}
	if !(costs["Genode/Linux"] > costs["SeL4"] && costs["SeL4"] > costs["NOVA"] && costs["NOVA"] > costs["Fiasco.OC"]) {
		t.Errorf("kernel cost ordering wrong: %v", costs)
	}
}

func TestLinuxBaselineIsCheapest(t *testing.T) {
	lx, err := ukernel.NewLinuxSQLite(appComponent())
	if err != nil {
		t.Fatal(err)
	}
	cl := runWorkload(t, lx.Sys, lx.VFS, lx.Sys.M.Clock)
	if lx.Syscalls == 0 {
		t.Error("Linux baseline made no syscalls")
	}
	d, err := ukernel.NewSQLite(ukernel.FiascoOC, 3, appComponent())
	if err != nil {
		t.Fatal(err)
	}
	ck := runWorkload(t, d.Sys, d.VFS, d.Sys.M.Clock)
	if cl >= ck {
		t.Errorf("Linux (%d) not cheaper than Fiasco-3 (%d)", cl, ck)
	}
}

func TestInvalidComponentCount(t *testing.T) {
	if _, err := ukernel.NewSQLite(ukernel.SeL4, 5, appComponent()); err == nil {
		t.Fatal("5-compartment deployment accepted (Figure 9 defines 3 and 4)")
	}
}

func TestWorkloadCorrectUnderIPC(t *testing.T) {
	// The IPC wrappers must not alter results, only cost.
	d, err := ukernel.NewSQLite(ukernel.SeL4, 4, appComponent())
	if err != nil {
		t.Fatal(err)
	}
	err = d.Sys.RunAs("SQLITE", func(e *cubicle.Env) {
		d.VFS.InitBuffers(e, e.CubicleOf("RAMFS"))
		ioBuf := e.HeapAlloc(sqldb.PageSize)
		db, err := sqldb.Open(e, d.VFS, "/c.db", ioBuf, 16)
		if err != nil {
			t.Fatal(err)
		}
		db.MustExec("CREATE TABLE t (a INTEGER)")
		db.MustExec("INSERT INTO t VALUES (1), (2), (3)")
		r := db.MustExec("SELECT sum(a) FROM t")
		if r.Rows[0][0].I != 6 {
			t.Errorf("sum = %v", r.Rows[0][0])
		}
		if res := db.MustExec("PRAGMA integrity_check"); res.Rows[0][0].S != "ok" {
			t.Errorf("integrity: %v", res.Rows)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
