// Package uktime is the TIME component of the Unikraft deployments
// (Figures 5 and 8): monotonic and wall-clock time derived from the
// simulator's virtual cycle clock, plus a coarse tick counter used by the
// TCP stack and the database engine for timeouts and timestamps.
package uktime

import (
	"cubicleos/internal/cubicle"
	"cubicleos/internal/cycles"
)

// Name of the component in deployments.
const Name = "TIME"

// wallEpochNs anchors the virtual wall clock (2021-04-19, the ASPLOS'21
// conference date, chosen arbitrarily but deterministically).
const wallEpochNs = 1618790400_000000000

// Module is the time component: a thin shim over the virtual clock.
type Module struct {
	clock *cycles.Clock
}

// New creates the time module reading the given clock.
func New(clock *cycles.Clock) *Module { return &Module{clock: clock} }

// MonotonicNs returns nanoseconds since boot on the virtual clock.
func (t *Module) MonotonicNs() uint64 {
	return uint64(cycles.Duration(t.clock.Cycles()).Nanoseconds())
}

// Component returns the TIME component for the builder.
func (t *Module) Component() *cubicle.Component {
	return &cubicle.Component{
		Name: Name,
		Kind: cubicle.KindIsolated,
		Exports: []cubicle.ExportDecl{
			{Name: "time_monotonic_ns", Fn: func(e *cubicle.Env, args []uint64) []uint64 {
				e.Work(40) // clocksource read
				return []uint64{t.MonotonicNs()}
			}},
			{Name: "time_wall_ns", Fn: func(e *cubicle.Env, args []uint64) []uint64 {
				e.Work(40)
				return []uint64{wallEpochNs + t.MonotonicNs()}
			}},
			{Name: "time_cycles", Fn: func(e *cubicle.Env, args []uint64) []uint64 {
				return []uint64{t.clock.Cycles()}
			}},
		},
	}
}

// Client is typed access to TIME from another cubicle.
type Client struct {
	mono, wall cubicle.Handle
}

// NewClient resolves TIME's entry points for a caller cubicle.
func NewClient(m *cubicle.Monitor, caller cubicle.ID) *Client {
	return &Client{
		mono: m.MustResolve(caller, Name, "time_monotonic_ns"),
		wall: m.MustResolve(caller, Name, "time_wall_ns"),
	}
}

// MonotonicNs reads the monotonic clock via a cross-cubicle call.
func (c *Client) MonotonicNs(e *cubicle.Env) uint64 { return c.mono.Call(e)[0] }

// WallNs reads the wall clock via a cross-cubicle call.
func (c *Client) WallNs(e *cubicle.Env) uint64 { return c.wall.Call(e)[0] }
