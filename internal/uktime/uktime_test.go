package uktime_test

import (
	"testing"

	"cubicleos/internal/boot"
	"cubicleos/internal/cubicle"
	"cubicleos/internal/uktime"
)

func bootApp(t *testing.T) *boot.System {
	t.Helper()
	return boot.MustNewFS(boot.Config{Mode: cubicle.ModeFull, Extra: []*cubicle.Component{{
		Name: "APP", Kind: cubicle.KindIsolated,
		Exports: []cubicle.ExportDecl{{Name: "main", Fn: func(e *cubicle.Env, a []uint64) []uint64 { return nil }}},
	}}})
}

func TestMonotonicAdvancesWithWork(t *testing.T) {
	s := bootApp(t)
	err := s.RunAs("APP", func(e *cubicle.Env) {
		c := uktime.NewClient(s.M, s.Cubs["APP"].ID)
		t1 := c.MonotonicNs(e)
		e.Work(2_200_000) // 1 ms at 2.2 GHz
		t2 := c.MonotonicNs(e)
		if t2 <= t1 {
			t.Errorf("clock did not advance: %d -> %d", t1, t2)
		}
		if d := t2 - t1; d < 1_000_000 {
			t.Errorf("1ms of work advanced the clock by only %d ns", d)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWallClockAnchored(t *testing.T) {
	s := bootApp(t)
	err := s.RunAs("APP", func(e *cubicle.Env) {
		c := uktime.NewClient(s.M, s.Cubs["APP"].ID)
		wall := c.WallNs(e)
		mono := c.MonotonicNs(e)
		if wall <= mono {
			t.Error("wall clock not anchored past the epoch")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTimeCallsAreCrossings(t *testing.T) {
	s := bootApp(t)
	err := s.RunAs("APP", func(e *cubicle.Env) {
		c := uktime.NewClient(s.M, s.Cubs["APP"].ID)
		c.MonotonicNs(e)
	})
	if err != nil {
		t.Fatal(err)
	}
	edge := cubicle.Edge{From: s.Cubs["APP"].ID, To: s.Cubs[uktime.Name].ID}
	if s.M.Stats.Calls[edge] != 1 {
		t.Errorf("APP->TIME edge = %d, want 1", s.M.Stats.Calls[edge])
	}
}
