// Command cubicle-top is the live dashboard of the observability layer: it
// boots the NGINX deployment with tracing, metrics and overload governance
// enabled, drives an open-loop siege against it, and renders per-cubicle
// crossing rates, edge latencies, the health ladder and shed/retry/
// shootdown rates as the run progresses — top(1) for a library OS.
//
// The run is fully virtual: -refresh inserts wall-clock pauses between
// frames so a human can watch, and -once renders a single final frame
// (no ANSI escapes) for scripts and CI.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"cubicleos"
	"cubicleos/internal/cluster"
	"cubicleos/internal/dash"
	"cubicleos/internal/httpd"
	"cubicleos/internal/siege"
)

// clusterTop floods an N-backend virtual cluster while a scripted kill
// takes one backend through drain → warm restart → re-admission, then
// renders the fleet table: top(1) for the whole cluster.
func clusterTop(n int, rate float64, requests, size int) {
	c, err := cluster.New(cluster.Options{
		Backends:           n,
		Mode:               cubicleos.ModeFull,
		Seed:               7,
		CheckpointInterval: 5_000_000,
		HedgeAfter:         20_000_000,
		Script:             []cluster.Event{{AtCycle: 25_000_000, Backend: n / 2, Action: cluster.ActKill}},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.PutFile("/index.html", make([]byte, size)); err != nil {
		log.Fatal(err)
	}
	st, err := c.RunOpenLoop(cluster.RunOptions{Path: "/index.html", Rate: rate, Requests: requests})
	if err != nil {
		log.Fatal(err)
	}
	dash.FleetFrame(st, os.Stdout)
	fmt.Printf("\nrun: offered %.0f rps  ok %d  shed %d  errors %d  dropped %d  goodput %.0f rps\n",
		st.OfferedRPS, st.OK, st.Shed, st.Errors, st.Dropped, st.GoodputRPS)
}

func main() {
	rate := flag.Float64("rate", 6000, "offered load in requests per virtual second")
	requests := flag.Int("requests", 600, "arrivals in the run")
	size := flag.Int("size", 4096, "response body size in bytes")
	interval := flag.Uint64("metrics-interval", 2_000_000, "metrics sampling interval in virtual cycles")
	frame := flag.Uint64("frame", 4_400_000, "virtual cycles between frames (2 ms at 2.2 GHz)")
	refresh := flag.Duration("refresh", 80*time.Millisecond, "wall-clock pause per frame")
	once := flag.Bool("once", false, "render one final frame without ANSI escapes and exit")
	ungoverned := flag.Bool("ungoverned", false, "disable overload governance (watch the pile-up instead)")
	clusterN := flag.Int("cluster", 0, "watch an N-backend virtual cluster through a scripted failover instead of one system")
	flag.Parse()

	if *clusterN > 0 {
		clusterTop(*clusterN, *rate, *requests, *size)
		return
	}

	o := siege.Options{
		Mode:        cubicleos.ModeFull,
		TraceEvents: 1 << 15, TraceSamplePeriod: 50_000,
		MetricsInterval: *interval,
	}
	if !*ungoverned {
		pol := cubicleos.DefaultRestartPolicy()
		pol.CrossingBudget = 0
		o.Supervision = &pol
		o.Governance = &httpd.Governance{
			MaxConns: 16, RetryAfter: 1, Retry: cubicleos.DefaultRetryPolicy(),
		}
		o.WireCap = 256
		o.ReapClosed = true
	}
	tgt, err := siege.NewTargetOpts(o)
	if err != nil {
		log.Fatal(err)
	}
	if err := tgt.PutFile("/index.html", make([]byte, *size)); err != nil {
		log.Fatal(err)
	}

	lo := siege.OpenLoopOptions{Path: "/index.html", Rate: *rate, Requests: *requests}
	var w io.Writer = os.Stdout
	live := dash.LiveOptions{
		FrameCycles: *frame,
		Refresh:     *refresh,
		Dash:        dash.Options{ANSI: !*once},
	}
	if *once {
		// Single-frame mode: drive silently, render only the final state.
		live.Refresh = 0
		w = io.Discard
	}
	st, err := dash.Live(tgt, lo, w, live)
	if err != nil {
		log.Fatal(err)
	}
	if *once {
		dash.New(tgt.Sys.M, os.Stdout, dash.Options{}).Frame()
	}
	fmt.Printf("\nrun: offered %.0f rps  ok %d  shed %d  errors %d  dropped %d  goodput %.0f rps  p50 %s  p99 %s\n",
		st.OfferedRPS, st.OK, st.Shed, st.Errors, st.Dropped, st.GoodputRPS,
		st.P50.Round(10*time.Microsecond), st.P99.Round(10*time.Microsecond))
}
