// Command httpbench runs the NGINX download-latency sweep of the paper's
// §6.3 evaluation (Figure 7): it provisions files of each size into the
// server's RAMFS, fetches them with the siege-style client, and prints
// latency per transfer size for the chosen isolation mode.
//
// With -openloop it instead runs an open-loop offered-load sweep across
// the saturation knee, governed (admission control + bounded buffers)
// versus ungoverned, printing goodput, shed rate, tail latencies, peak
// connections and the memory the overload left behind. -assert-degrade
// exits non-zero unless the governed server degrades gracefully — the
// overload smoke check scripts/check.sh runs in CI.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"reflect"
	"strconv"
	"strings"
	"time"

	"cubicleos"
	"cubicleos/internal/cluster"
	"cubicleos/internal/dash"
	"cubicleos/internal/httpd"
	"cubicleos/internal/siege"
)

// parseRates parses the -rates flag into offered loads.
func parseRates(rateList string) []float64 {
	var rates []float64
	for _, s := range strings.Split(rateList, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || r <= 0 {
			log.Fatalf("bad rate %q in -rates", s)
		}
		rates = append(rates, r)
	}
	return rates
}

// openLoopSweep compares the ungoverned and governed servers at each
// offered rate and optionally asserts the graceful-degradation shape.
func openLoopSweep(rateList string, requests int, assert bool) {
	rates := parseRates(rateList)
	mk := func(governed bool) func() (*siege.Target, error) {
		return func() (*siege.Target, error) {
			o := siege.Options{Mode: cubicleos.ModeFull}
			if governed {
				pol := cubicleos.DefaultRestartPolicy()
				pol.CrossingBudget = 0
				o.Supervision = &pol
				o.Governance = &httpd.Governance{
					MaxConns: 16, RetryAfter: 1, Retry: cubicleos.DefaultRetryPolicy(),
				}
				o.WireCap = 256
				o.ReapClosed = true
			}
			tgt, err := siege.NewTargetOpts(o)
			if err != nil {
				return nil, err
			}
			return tgt, tgt.PutFile("/index.html", make([]byte, 4096))
		}
	}
	opts := siege.OpenLoopOptions{Path: "/index.html", Requests: requests}
	ungov, err := siege.OpenLoopSweep(rates, mk(false), opts)
	if err != nil {
		log.Fatal(err)
	}
	gov, err := siege.OpenLoopSweep(rates, mk(true), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %9s %8s %5s %5s %8s %8s %9s %10s\n",
		"config", "offered", "goodput", "ok", "shed", "p50", "p99", "maxconns", "arena KiB")
	row := func(name string, st *siege.OpenLoopStats) {
		fmt.Printf("%-10s %9.0f %8.0f %5d %5d %8s %8s %9d %10d\n",
			name, st.OfferedRPS, st.GoodputRPS, st.OK, st.Shed,
			st.P50.Round(10_000).String(), st.P99.Round(10_000).String(),
			st.MaxConns, st.ArenaBytes/1024)
	}
	for i := range rates {
		row("ungoverned", ungov[i])
		row("governed", gov[i])
	}
	if !assert {
		return
	}
	// Graceful degradation: at the highest offered rate the governed server
	// must shed explicitly (no silent drops), hold its connection bound, and
	// cost less memory than the ungoverned pile-up; below the knee (lowest
	// rate) governance must be invisible.
	lo, hi := 0, len(rates)-1
	fail := func(f string, a ...any) { log.Fatalf("assert-degrade: "+f, a...) }
	if gov[lo].Shed != 0 || gov[lo].OK != ungov[lo].OK {
		fail("governance not invisible below the knee: ok=%d/%d shed=%d",
			gov[lo].OK, ungov[lo].OK, gov[lo].Shed)
	}
	if gov[hi].Shed == 0 {
		fail("governed server shed nothing at %.0f rps", rates[hi])
	}
	if gov[hi].OK == 0 {
		fail("governed server completed nothing at %.0f rps", rates[hi])
	}
	if gov[hi].Dropped != 0 {
		fail("governed server silently dropped %d connections", gov[hi].Dropped)
	}
	if gov[hi].MaxConns > 16 {
		fail("admission control leaked: %d concurrent connections", gov[hi].MaxConns)
	}
	if gov[hi].ArenaBytes >= ungov[hi].ArenaBytes {
		fail("governed arena %d KiB not below ungoverned %d KiB",
			gov[hi].ArenaBytes/1024, ungov[hi].ArenaBytes/1024)
	}
	fmt.Println("assert-degrade ok: explicit sheds, bounded connections and memory, no silent drops")
}

// liveRun drives one governed open-loop run while rendering the
// cubicle-top dashboard (httpbench -live): the same deployment the
// -openloop sweep governs, watched through the observability layer as the
// load crosses the saturation knee.
func liveRun(rate float64, requests int, refresh time.Duration) {
	pol := cubicleos.DefaultRestartPolicy()
	pol.CrossingBudget = 0
	tgt, err := siege.NewTargetOpts(siege.Options{
		Mode:        cubicleos.ModeFull,
		TraceEvents: 1 << 15, TraceSamplePeriod: 50_000,
		MetricsInterval: 2_000_000,
		Supervision:     &pol,
		Governance: &httpd.Governance{
			MaxConns: 16, RetryAfter: 1, Retry: cubicleos.DefaultRetryPolicy(),
		},
		WireCap:    256,
		ReapClosed: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := tgt.PutFile("/index.html", make([]byte, 4096)); err != nil {
		log.Fatal(err)
	}
	st, err := dash.Live(tgt,
		siege.OpenLoopOptions{Path: "/index.html", Rate: rate, Requests: requests},
		os.Stdout,
		dash.LiveOptions{Refresh: refresh, Dash: dash.Options{ANSI: refresh > 0}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrun: offered %.0f rps  ok %d  shed %d  dropped %d  goodput %.0f rps  p50 %s  p99 %s\n",
		st.OfferedRPS, st.OK, st.Shed, st.Dropped, st.GoodputRPS,
		st.P50.Round(10*time.Microsecond), st.P99.Round(10*time.Microsecond))
}

// parallelSweep runs the open-loop sweep through the SMP driver: each
// offered rate is sharded across N cores, one booted system per core,
// stepped by real worker goroutines under GVT quantum barriers. The
// virtual-time columns match the single-core driver's semantics; the
// wall columns show host-parallel scaling. With assertScale > 0 a 1-core
// reference sweep runs afterwards and the command exits non-zero unless
// aggregate wall-clock throughput reached assertScale× the reference.
func parallelSweep(rateList string, requests, cores int, assertScale float64) {
	rates := parseRates(rateList)
	mk := func(core int) (*siege.Target, error) {
		tgt, err := siege.NewTarget(cubicleos.ModeFull)
		if err != nil {
			return nil, err
		}
		return tgt, tgt.PutFile("/index.html", make([]byte, 4096))
	}
	sweep := func(n int) []*siege.ParallelStats {
		out := make([]*siege.ParallelStats, 0, len(rates))
		for _, r := range rates {
			o := siege.OpenLoopOptions{Path: "/index.html", Rate: r, Requests: requests}
			ps, err := siege.ParallelOpenLoop(n, mk, o)
			if err != nil {
				log.Fatal(err)
			}
			out = append(out, ps)
		}
		return out
	}
	res := sweep(cores)
	fmt.Printf("cores=%d  requests=%d per rate\n", cores, requests)
	fmt.Printf("%9s %8s %5s %5s %8s %8s %7s %9s %9s\n",
		"offered", "goodput", "ok", "shed", "p50", "p99", "quanta", "wall ms", "wall rps")
	for _, ps := range res {
		fmt.Printf("%9.0f %8.0f %5d %5d %8s %8s %7d %9.1f %9.0f\n",
			ps.OfferedRPS, ps.GoodputRPS, ps.OK, ps.Shed,
			ps.P50.Round(10_000).String(), ps.P99.Round(10_000).String(),
			ps.Quanta, ps.WallSeconds*1000, ps.WallRPS)
	}
	if assertScale <= 0 {
		return
	}
	ref := sweep(1)
	var okN, ok1 int
	var wallN, wall1 float64
	for i := range rates {
		okN += res[i].OK
		ok1 += ref[i].OK
		wallN += res[i].WallSeconds
		wall1 += ref[i].WallSeconds
	}
	if okN == 0 || ok1 == 0 || wallN <= 0 || wall1 <= 0 {
		log.Fatalf("assert-scale: degenerate sweep (ok=%d/%d wall=%.3f/%.3f)", okN, ok1, wallN, wall1)
	}
	rpsN, rps1 := float64(okN)/wallN, float64(ok1)/wall1
	scale := rpsN / rps1
	fmt.Printf("wall-clock scaling: %.0f rps on %d cores vs %.0f rps on 1 core = %.2fx\n",
		rpsN, cores, rps1, scale)
	if scale < assertScale {
		log.Fatalf("assert-scale: %d-core wall throughput only %.2fx the 1-core reference, want >= %.2fx",
			cores, scale, assertScale)
	}
	fmt.Printf("assert-scale ok: >= %.2fx\n", assertScale)
}

// clusterRun drives the virtual cluster (httpbench -cluster N): a
// goodput-scaling sweep over 1..N backends, then the failover scenario —
// one backend killed mid-flood — against an undisturbed reference run.
// With assert it exits non-zero unless goodput scales near-proportionally,
// the kill keeps goodput at >= 60% of steady state, the killed backend is
// drained and re-admitted after a warm (checkpoint-restored) restart, and
// two identically-seeded chaos runs produce bit-identical reports.
func clusterRun(n int, rate float64, requests int, seed uint64, assert bool) {
	if n < 1 {
		log.Fatal("-cluster needs at least 1 backend")
	}
	fail := func(f string, a ...any) { log.Fatalf("assert-degrade: "+f, a...) }
	boot := func(size int, script []cluster.Event) *cluster.Cluster {
		c, err := cluster.New(cluster.Options{
			Backends:           size,
			Mode:               cubicleos.ModeFull,
			Seed:               seed,
			CheckpointInterval: 5_000_000,
			Script:             script,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := c.PutFile("/index.html", make([]byte, 4096)); err != nil {
			log.Fatal(err)
		}
		return c
	}
	perBackendRate := rate / float64(n)

	fmt.Printf("goodput scaling sweep (%.0f rps per backend, %d arrivals per backend)\n", perBackendRate, requests)
	fmt.Printf("%9s %9s %8s %5s %5s %5s %8s %8s\n",
		"backends", "offered", "goodput", "ok", "shed", "drop", "p50", "p99")
	sweep := map[int]*cluster.Stats{}
	for size := 1; size <= n; size *= 2 {
		c := boot(size, nil)
		st, err := c.RunOpenLoop(cluster.RunOptions{
			Path: "/index.html", Rate: perBackendRate * float64(size), Requests: requests * size})
		if err != nil {
			log.Fatal(err)
		}
		sweep[size] = st
		fmt.Printf("%9d %9.0f %8.0f %5d %5d %5d %8s %8s\n",
			size, st.OfferedRPS, st.GoodputRPS, st.OK, st.Shed, st.Dropped,
			st.P50.Round(10_000).String(), st.P99.Round(10_000).String())
	}

	run := cluster.RunOptions{Path: "/index.html", Rate: rate, Requests: requests * n}
	baseline, err := boot(n, nil).RunOpenLoop(run)
	if err != nil {
		log.Fatal(err)
	}
	victim := n / 2
	script := []cluster.Event{{AtCycle: 25_000_000, Backend: victim, Action: cluster.ActKill}}
	chaos, err := boot(n, script).RunOpenLoop(run)
	if err != nil {
		log.Fatal(err)
	}
	replay, err := boot(n, script).RunOpenLoop(run)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfailover: kill backend %d of %d mid-flood at %.0f rps\n", victim, n, rate)
	fmt.Printf("%-10s %8s %5s %5s %5s %7s %7s %9s %8s\n",
		"config", "goodput", "ok", "shed", "drop", "drains", "readmit", "failovers", "p99")
	row := func(name string, st *cluster.Stats) {
		fmt.Printf("%-10s %8.0f %5d %5d %5d %7d %7d %9d %8s\n",
			name, st.GoodputRPS, st.OK, st.Shed, st.Dropped,
			st.Drains, st.Readmits, st.Failovers, st.P99.Round(10_000).String())
	}
	row("steady", baseline)
	row("kill-one", chaos)
	v := chaos.PerBackend[victim]
	fmt.Printf("victim backend %d: health=%s warm-restarts=%d routed=%d\n",
		v.Index, v.Health, v.Sys.WarmRestarts, v.Routed)

	if !assert {
		return
	}
	for size := 2; size <= n; size *= 2 {
		want := 0.8 * float64(size) * sweep[1].GoodputRPS
		if sweep[size].GoodputRPS < want {
			fail("goodput does not scale: %d backends reach %.0f rps, want >= %.0f",
				size, sweep[size].GoodputRPS, want)
		}
	}
	if chaos.GoodputRPS < 0.6*baseline.GoodputRPS {
		fail("kill-one goodput %.0f rps below 60%% of steady-state %.0f rps",
			chaos.GoodputRPS, baseline.GoodputRPS)
	}
	if chaos.Drains < 1 || chaos.Readmits < 1 {
		fail("victim not drained+readmitted (drains %d, readmits %d)", chaos.Drains, chaos.Readmits)
	}
	if v.Health != "healthy" {
		fail("victim ended %q, want healthy after re-admission", v.Health)
	}
	if v.Sys.WarmRestarts < 1 {
		fail("victim restarted cold (%d warm restarts) — checkpoint restore did not run", v.Sys.WarmRestarts)
	}
	if !reflect.DeepEqual(chaos, replay) {
		fail("two identically-seeded chaos runs diverged")
	}
	fmt.Println("assert-degrade ok: goodput scales, failover holds >= 60%, warm re-admission, bit-identical replay")
}

func main() {
	mode := flag.String("mode", "both", "isolation mode: unikraft, full, both")
	repeats := flag.Int("repeats", 2, "measured requests per size (after one warm-up)")
	openloop := flag.Bool("openloop", false, "run the open-loop overload sweep instead of the size sweep")
	rateList := flag.String("rates", "1000,2000,4000,8000", "offered rates (rps) for -openloop")
	requests := flag.Int("requests", 120, "arrivals per rate for -openloop")
	assertDegrade := flag.Bool("assert-degrade", false, "with -openloop: exit non-zero unless degradation is graceful")
	cores := flag.Int("cores", 0, "shard the open-loop sweep across N simulated cores (SMP driver)")
	assertScale := flag.Float64("assert-scale", 0, "with -cores: exit non-zero unless wall throughput >= X times a 1-core reference")
	live := flag.Bool("live", false, "drive one governed open-loop run with the live cubicle-top dashboard")
	liveRate := flag.Float64("live-rate", 6000, "offered rate for -live")
	liveRefresh := flag.Duration("live-refresh", 80*time.Millisecond, "wall-clock pause per -live frame (0 = render once at the end)")
	clusterN := flag.Int("cluster", 0, "run the virtual-cluster scaling + failover scenario with N backends")
	clusterRate := flag.Float64("cluster-rate", 6000, "cluster-wide offered rate (rps) for -cluster")
	clusterSeed := flag.Uint64("cluster-seed", 7, "seed for the -cluster chaos and hash streams")
	flag.Parse()

	if *clusterN > 0 {
		clusterRun(*clusterN, *clusterRate, 90, *clusterSeed, *assertDegrade)
		return
	}
	if *live {
		liveRun(*liveRate, *requests, *liveRefresh)
		return
	}
	if *cores > 0 {
		parallelSweep(*rateList, *requests, *cores, *assertScale)
		return
	}
	if *openloop {
		openLoopSweep(*rateList, *requests, *assertDegrade)
		return
	}

	sizes := []int{1 << 10, 2 << 10, 8 << 10, 32 << 10, 64 << 10, 128 << 10,
		512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20}

	measure := func(m cubicleos.Mode) map[int]float64 {
		tgt, err := siege.NewTarget(m)
		if err != nil {
			log.Fatal(err)
		}
		out := make(map[int]float64)
		for _, size := range sizes {
			name := fmt.Sprintf("/f%d.bin", size)
			if err := tgt.PutFile(name, make([]byte, size)); err != nil {
				log.Fatal(err)
			}
			if _, err := tgt.Fetch(name); err != nil { // warm-up
				log.Fatal(err)
			}
			var sum float64
			for i := 0; i < *repeats; i++ {
				res, err := tgt.Fetch(name)
				if err != nil {
					log.Fatal(err)
				}
				if res.Status != 200 || len(res.Body) != size {
					log.Fatalf("size %d: bad response", size)
				}
				sum += float64(res.Latency.Microseconds()) / 1000
			}
			out[size] = sum / float64(*repeats)
		}
		return out
	}

	switch *mode {
	case "both":
		base := measure(cubicleos.ModeUnikraft)
		full := measure(cubicleos.ModeFull)
		fmt.Printf("%12s %14s %14s %8s\n", "size (B)", "baseline (ms)", "cubicleos (ms)", "ratio")
		for _, size := range sizes {
			fmt.Printf("%12d %14.2f %14.2f %8.2f\n", size, base[size], full[size], full[size]/base[size])
		}
	case "unikraft", "full":
		m := cubicleos.ModeUnikraft
		if *mode == "full" {
			m = cubicleos.ModeFull
		}
		res := measure(m)
		fmt.Printf("%12s %14s\n", "size (B)", "latency (ms)")
		for _, size := range sizes {
			fmt.Printf("%12d %14.2f\n", size, res[size])
		}
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}
