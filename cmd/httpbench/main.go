// Command httpbench runs the NGINX download-latency sweep of the paper's
// §6.3 evaluation (Figure 7): it provisions files of each size into the
// server's RAMFS, fetches them with the siege-style client, and prints
// latency per transfer size for the chosen isolation mode.
package main

import (
	"flag"
	"fmt"
	"log"

	"cubicleos"
	"cubicleos/internal/siege"
)

func main() {
	mode := flag.String("mode", "both", "isolation mode: unikraft, full, both")
	repeats := flag.Int("repeats", 2, "measured requests per size (after one warm-up)")
	flag.Parse()

	sizes := []int{1 << 10, 2 << 10, 8 << 10, 32 << 10, 64 << 10, 128 << 10,
		512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20}

	measure := func(m cubicleos.Mode) map[int]float64 {
		tgt, err := siege.NewTarget(m)
		if err != nil {
			log.Fatal(err)
		}
		out := make(map[int]float64)
		for _, size := range sizes {
			name := fmt.Sprintf("/f%d.bin", size)
			if err := tgt.PutFile(name, make([]byte, size)); err != nil {
				log.Fatal(err)
			}
			if _, err := tgt.Fetch(name); err != nil { // warm-up
				log.Fatal(err)
			}
			var sum float64
			for i := 0; i < *repeats; i++ {
				res, err := tgt.Fetch(name)
				if err != nil {
					log.Fatal(err)
				}
				if res.Status != 200 || len(res.Body) != size {
					log.Fatalf("size %d: bad response", size)
				}
				sum += float64(res.Latency.Microseconds()) / 1000
			}
			out[size] = sum / float64(*repeats)
		}
		return out
	}

	switch *mode {
	case "both":
		base := measure(cubicleos.ModeUnikraft)
		full := measure(cubicleos.ModeFull)
		fmt.Printf("%12s %14s %14s %8s\n", "size (B)", "baseline (ms)", "cubicleos (ms)", "ratio")
		for _, size := range sizes {
			fmt.Printf("%12d %14.2f %14.2f %8.2f\n", size, base[size], full[size], full[size]/base[size])
		}
	case "unikraft", "full":
		m := cubicleos.ModeUnikraft
		if *mode == "full" {
			m = cubicleos.ModeFull
		}
		res := measure(m)
		fmt.Printf("%12s %14s\n", "size (B)", "latency (ms)")
		for _, size := range sizes {
			fmt.Printf("%12d %14.2f\n", size, res[size])
		}
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}
