// Command speedtest1 runs the SQLite benchmark workload (the paper's
// §6.4 evaluation) on a CubicleOS deployment and prints per-query
// virtual execution times, mirroring the real speedtest1 utility's
// output style. As in the paper's artifact, the size of the database is
// controlled by the --stat flag (default 100).
package main

import (
	"flag"
	"fmt"
	"log"

	"cubicleos"
	"cubicleos/internal/cycles"
	"cubicleos/internal/experiments"
	"cubicleos/internal/speedtest"
)

func main() {
	stat := flag.Int("stat", 100, "workload scale (speedtest1 --stat)")
	mode := flag.String("mode", "full", "isolation mode: unikraft, no-mpk, no-acl, full")
	grouping := flag.String("compartments", "7", "compartment configuration: 3, 4 or 7 (Figure 9)")
	flag.Parse()

	var m cubicleos.Mode
	switch *mode {
	case "unikraft":
		m = cubicleos.ModeUnikraft
	case "no-mpk":
		m = cubicleos.ModeTrampoline
	case "no-acl":
		m = cubicleos.ModeNoACL
	case "full":
		m = cubicleos.ModeFull
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	var groups map[string]string
	switch *grouping {
	case "3":
		groups = map[string]string{"VFSCORE": "CORE", "RAMFS": "CORE", "PLAT": "CORE", "ALLOC": "CORE", "BOOT": "CORE"}
	case "4":
		groups = map[string]string{"VFSCORE": "CORE", "PLAT": "CORE", "ALLOC": "CORE", "BOOT": "CORE"}
	case "7":
		groups = nil
	default:
		log.Fatalf("compartments must be 3, 4 or 7")
	}

	t, err := experiments.NewSQLiteTarget(m, groups, *stat, experiments.UnikraftWorkScale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("speedtest1 on CubicleOS (%s mode, %s compartments, --stat %d)\n", *mode, *grouping, *stat)
	if err := t.Setup(); err != nil {
		log.Fatal(err)
	}
	var total uint64
	for _, id := range speedtest.QueryIDs {
		c, err := t.RunQuery(id)
		if err != nil {
			log.Fatalf("query %d: %v", id, err)
		}
		total += c
		grp := "B"
		if speedtest.InGroupA(id) {
			grp = "A"
		}
		fmt.Printf(" %4d [%s] %-55s %10.3f ms\n", id, grp, speedtest.Title(id),
			float64(cycles.Duration(c).Microseconds())/1000)
	}
	fmt.Printf("\nTOTAL %51s %10.3f ms\n", "",
		float64(cycles.Duration(total).Microseconds())/1000)
	st := t.Sys.M.Stats
	fmt.Printf("isolation events: %d crossings, %d traps, %d retags, %d wrpkru, %d window ops\n",
		st.CallsTotal, st.Faults, st.Retags, st.WRPKRUs, st.WindowOps)
	ps := t.DB.Pager().Stats
	fmt.Printf("pager: %d hits, %d misses, %d writes, %d journal pages, %d fsyncs, %d commits\n",
		ps.Hits, ps.Misses, ps.Writes, ps.JournalPages, ps.Fsyncs, ps.Commits)
}
