// Command cubicle-inspect boots a deployment and dumps its isolation
// state: cubicles with their MPK keys and exports, the page map by owner
// and type, installed trampolines, and (after a short workload) the
// window tables and event counters — the view a CubicleOS operator gets
// of a running system.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"cubicleos"
	"cubicleos/internal/siege"
	"cubicleos/internal/vm"
)

func main() {
	workload := flag.Bool("workload", true, "run a short HTTP workload before dumping")
	flag.Parse()

	tgt, err := siege.NewTarget(cubicleos.ModeFull)
	if err != nil {
		log.Fatal(err)
	}
	if *workload {
		if err := tgt.PutFile("/probe.bin", make([]byte, 16<<10)); err != nil {
			log.Fatal(err)
		}
		if _, err := tgt.Fetch("/probe.bin"); err != nil {
			log.Fatal(err)
		}
	}
	m := tgt.Sys.M

	fmt.Println("CUBICLES")
	fmt.Printf("%-4s %-10s %-9s %-4s %-8s %s\n", "id", "name", "kind", "key", "windows", "exports")
	for _, c := range m.Cubicles() {
		exports := c.Exports()
		sort.Strings(exports)
		show := exports
		if len(show) > 4 {
			show = append(append([]string{}, show[:4]...), fmt.Sprintf("… (%d total)", len(exports)))
		}
		fmt.Printf("%-4d %-10s %-9s %-4d %-8d %v\n", c.ID, c.Name, c.Kind, c.Key, m.WindowCount(c.ID), show)
	}

	fmt.Println("\nPAGE MAP (pages by owner and type)")
	type key struct {
		owner int
		typ   vm.PageType
	}
	counts := map[key]int{}
	m.AS.ForEachPage(func(pn uint64, p *vm.Page) {
		counts[key{p.Owner, p.Type}]++
	})
	names := map[int]string{int(cubicleos.CubicleID(0)): "MONITOR"}
	for _, c := range m.Cubicles() {
		names[int(c.ID)] = c.Name
	}
	var keys []key
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].owner != keys[j].owner {
			return keys[i].owner < keys[j].owner
		}
		return keys[i].typ < keys[j].typ
	})
	for _, k := range keys {
		owner := names[k.owner]
		if owner == "" {
			owner = fmt.Sprintf("cubicle-%d", k.owner)
		}
		fmt.Printf("  %-10s %-7s %6d pages (%d KiB)\n", owner, k.typ, counts[k],
			counts[k]*vm.PageSize/1024)
	}

	fmt.Println("\nTRAMPOLINES")
	trs := m.Trampolines()
	fmt.Printf("  %d cross-cubicle call trampolines installed (one per public symbol)\n", len(trs))
	for i, tr := range trs {
		if i >= 8 {
			fmt.Printf("  … and %d more\n", len(trs)-8)
			break
		}
		fmt.Printf("  %s\n", tr.Symbol())
	}

	st := m.Stats
	fmt.Println("\nEVENT COUNTERS")
	fmt.Printf("  cross-cubicle calls   %10d\n", st.CallsTotal)
	fmt.Printf("  shared-cubicle calls  %10d\n", st.SharedCalls)
	fmt.Printf("  protection traps      %10d (%d denied)\n", st.Faults, st.DeniedFaults)
	fmt.Printf("  page retags           %10d\n", st.Retags)
	fmt.Printf("  wrpkru executions     %10d\n", st.WRPKRUs)
	fmt.Printf("  window operations     %10d\n", st.WindowOps)
	fmt.Printf("  window search steps   %10d\n", st.WindowSearchSteps)
	fmt.Printf("  stack arg bytes       %10d\n", st.StackBytesCopied)
	fmt.Printf("  bulk bytes copied     %10d\n", st.BulkBytesCopied)
	fmt.Printf("  virtual time          %10d cycles (%.3f ms at 2.2 GHz)\n",
		m.Clock.Cycles(), float64(m.Clock.Duration().Microseconds())/1000)
}
