// Command cubicle-inspect boots a deployment and dumps its isolation
// state: cubicles with their MPK keys and exports, the page map by owner
// and type, installed trampolines, and (after a short workload) the
// window tables and event counters — the view a CubicleOS operator gets
// of a running system. With -json the same report is emitted as
// machine-readable JSON for scripting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"cubicleos"
	"cubicleos/internal/cluster"
	"cubicleos/internal/cubicle"
	"cubicleos/internal/siege"
	"cubicleos/internal/vm"
)

// report is the machine-readable form of the dump.
type report struct {
	Mode     string         `json:"mode"`
	Cubicles []cubicleInfo  `json:"cubicles"`
	PageMap  []pageMapEntry `json:"page_map"`
	Tramps   []string       `json:"trampolines"`
	Counters counters       `json:"counters"`
	// TraceShards, when the run is traced, reports each per-core ring
	// shard's recorded/dropped accounting — the drop counters show whether
	// the ring capacity kept up with the event rate.
	TraceShards []shardInfo `json:"trace_shards,omitempty"`
	// Metrics, when the virtual-time metrics pipeline is enabled, carries
	// its configuration and the buffered interval snapshots.
	Metrics *metricsInfo `json:"metrics,omitempty"`
}

type shardInfo struct {
	Core     int    `json:"core"`
	Recorded uint64 `json:"recorded"`
	Dropped  uint64 `json:"dropped"`
	Retained int    `json:"retained"`
}

type metricsInfo struct {
	IntervalCycles uint64                  `json:"interval_cycles"`
	Recorded       uint64                  `json:"snapshots_recorded"`
	Dropped        uint64                  `json:"snapshots_dropped"`
	Samples        []cubicle.MetricsSample `json:"samples"`
}

type cubicleInfo struct {
	ID         int      `json:"id"`
	Name       string   `json:"name"`
	Kind       string   `json:"kind"`
	Key        int      `json:"key"`
	Windows    int      `json:"windows"`
	Health     string   `json:"health"`
	Restarts   uint64   `json:"restarts"`
	LastFault  string   `json:"last_fault,omitempty"`
	Components []string `json:"components,omitempty"`
	Exports    []string `json:"exports,omitempty"`
	// Checkpoint, when the cubicle has a last good checkpoint, reports
	// when it was captured and how big it is — the warm-recovery state an
	// operator has to reason about.
	Checkpoint *checkpointInfo `json:"checkpoint,omitempty"`
}

type checkpointInfo struct {
	Cycle uint64 `json:"cycle"`
	Bytes uint64 `json:"bytes"`
	Pages uint64 `json:"pages"`
}

type pageMapEntry struct {
	Owner     int    `json:"owner"`
	OwnerName string `json:"owner_name"`
	Type      string `json:"type"`
	Pages     int    `json:"pages"`
	KiB       int    `json:"kib"`
}

type edgeCount struct {
	From  int    `json:"from"`
	To    int    `json:"to"`
	Count uint64 `json:"count"`
}

type counters struct {
	Calls             uint64      `json:"cross_cubicle_calls"`
	SharedCalls       uint64      `json:"shared_cubicle_calls"`
	Faults            uint64      `json:"protection_traps"`
	DeniedFaults      uint64      `json:"denied_traps"`
	Retags            uint64      `json:"page_retags"`
	WRPKRUs           uint64      `json:"wrpkru_executions"`
	WindowOps         uint64      `json:"window_operations"`
	WindowSearchSteps uint64      `json:"window_search_steps"`
	StackBytesCopied  uint64      `json:"stack_arg_bytes"`
	BulkBytesCopied   uint64      `json:"bulk_bytes_copied"`
	KeyEvictions      uint64      `json:"key_evictions"`
	ContainedFaults   uint64      `json:"contained_faults"`
	Quarantines       uint64      `json:"quarantines"`
	Restarts          uint64      `json:"restarts"`
	WarmRestarts      uint64      `json:"warm_restarts"`
	ColdRestarts      uint64      `json:"cold_restarts"`
	Checkpoints       uint64      `json:"checkpoints"`
	CheckpointBytes   uint64      `json:"checkpoint_bytes"`
	InjectedFaults    uint64      `json:"injected_faults"`
	Sheds             uint64      `json:"sheds"`
	DeadlineFaults    uint64      `json:"deadline_faults"`
	QuotaFaults       uint64      `json:"quota_faults"`
	Retries           uint64      `json:"retries"`
	TLBHits           uint64      `json:"tlb_hits"`
	TLBMisses         uint64      `json:"tlb_misses"`
	TLBInvalidations  uint64      `json:"tlb_invalidations"`
	TLBShootdowns     uint64      `json:"tlb_shootdowns"`
	TLBShootdownInval uint64      `json:"tlb_shootdown_invalidations"`
	Edges             []edgeCount `json:"call_edges"`
	VirtualCycles     uint64      `json:"virtual_cycles"`
	VirtualMs         float64     `json:"virtual_ms"`
}

func buildReport(m *cubicleos.Monitor) *report {
	r := &report{Mode: m.Mode.String()}
	names := map[int]string{int(cubicle.MonitorID): "MONITOR"}
	for _, c := range m.Cubicles() {
		names[int(c.ID)] = c.Name
		exports := c.Exports()
		sort.Strings(exports)
		ci := cubicleInfo{
			ID: int(c.ID), Name: c.Name, Kind: c.Kind.String(), Key: int(c.Key),
			Windows: m.WindowCount(c.ID), Health: c.Health().String(),
			Restarts: c.Restarts(), Components: c.Components(), Exports: exports,
		}
		if lf := c.LastFault(); lf != nil {
			ci.LastFault = lf.Error()
		}
		if info, ok := m.LastCheckpoint(c.ID); ok {
			ci.Checkpoint = &checkpointInfo{Cycle: info.Cycle, Bytes: info.Bytes, Pages: info.Pages}
		}
		r.Cubicles = append(r.Cubicles, ci)
	}
	type key struct {
		owner int
		typ   vm.PageType
	}
	counts := map[key]int{}
	m.AS.ForEachPage(func(pn uint64, p *vm.Page) {
		counts[key{p.Owner, p.Type}]++
	})
	var keys []key
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].owner != keys[j].owner {
			return keys[i].owner < keys[j].owner
		}
		return keys[i].typ < keys[j].typ
	})
	for _, k := range keys {
		owner := names[k.owner]
		if owner == "" {
			owner = fmt.Sprintf("cubicle-%d", k.owner)
		}
		r.PageMap = append(r.PageMap, pageMapEntry{
			Owner: k.owner, OwnerName: owner, Type: k.typ.String(),
			Pages: counts[k], KiB: counts[k] * vm.PageSize / 1024,
		})
	}
	for _, tr := range m.Trampolines() {
		r.Tramps = append(r.Tramps, tr.Symbol())
	}
	sort.Strings(r.Tramps)
	st := m.Stats
	r.Counters = counters{
		Calls:             st.CallsTotal,
		SharedCalls:       st.SharedCalls,
		Faults:            st.Faults,
		DeniedFaults:      st.DeniedFaults,
		Retags:            st.Retags,
		WRPKRUs:           st.WRPKRUs,
		WindowOps:         st.WindowOps,
		WindowSearchSteps: st.WindowSearchSteps,
		StackBytesCopied:  st.StackBytesCopied,
		BulkBytesCopied:   st.BulkBytesCopied,
		KeyEvictions:      st.KeyEvictions,
		ContainedFaults:   st.ContainedFaults,
		Quarantines:       st.Quarantines,
		Restarts:          st.Restarts,
		WarmRestarts:      st.WarmRestarts,
		ColdRestarts:      st.ColdRestarts,
		Checkpoints:       st.Checkpoints,
		CheckpointBytes:   st.CheckpointBytes,
		InjectedFaults:    st.InjectedFaults,
		Sheds:             st.Sheds,
		DeadlineFaults:    st.DeadlineFaults,
		QuotaFaults:       st.QuotaFaults,
		Retries:           st.Retries,
		TLBHits:           st.TLBHits,
		TLBMisses:         st.TLBMisses,
		TLBInvalidations:  st.TLBInvalidations,
		TLBShootdowns:     st.TLBShootdowns,
		TLBShootdownInval: st.TLBShootdownInvalidations,
		VirtualCycles:     m.Clock.Cycles(),
		VirtualMs:         float64(m.Clock.Duration().Microseconds()) / 1000,
	}
	for _, e := range st.SortedEdges() {
		r.Counters.Edges = append(r.Counters.Edges, edgeCount{
			From: int(e.From), To: int(e.To), Count: e.Count,
		})
	}
	if trc := m.Tracer(); trc != nil {
		for c := 0; c < trc.Cores(); c++ {
			r.TraceShards = append(r.TraceShards, shardInfo{
				Core:     c,
				Recorded: trc.ShardRecorded(c),
				Dropped:  trc.ShardDropped(c),
				Retained: len(trc.ShardEvents(c)),
			})
		}
	}
	if m.MetricsEnabled() {
		r.Metrics = &metricsInfo{
			IntervalCycles: m.MetricsInterval(),
			Recorded:       m.MetricsRecorded(),
			Dropped:        m.MetricsDropped(),
			Samples:        m.MetricsSamples(),
		}
	}
	return r
}

// clusterReport is the machine-readable fleet dump (-cluster -json).
type clusterReport struct {
	Backends    int              `json:"backends"`
	Policy      string           `json:"policy"`
	Retries     uint64           `json:"retries"`
	Hedges      uint64           `json:"hedges"`
	HedgeWins   uint64           `json:"hedge_wins"`
	Failovers   uint64           `json:"failovers"`
	Drains      uint64           `json:"drains"`
	Readmits    uint64           `json:"readmits"`
	RouteFaults uint64           `json:"route_faults"`
	Fleet       []clusterBackend `json:"fleet"`
}

type clusterBackend struct {
	Index        int    `json:"index"`
	Health       string `json:"health"`
	Routed       uint64 `json:"routed"`
	OK           uint64 `json:"ok"`
	Shed         uint64 `json:"shed"`
	Errors       uint64 `json:"errors"`
	Dropped      uint64 `json:"dropped"`
	Drains       uint64 `json:"drains"`
	Readmits     uint64 `json:"readmits"`
	Routes       uint64 `json:"routes"`
	Failovers    uint64 `json:"failovers"`
	WarmRestarts uint64 `json:"warm_restarts"`
	ColdRestarts uint64 `json:"cold_restarts"`
	Quarantines  uint64 `json:"quarantines"`
}

// inspectCluster boots an N-backend virtual cluster, floods it while a
// scripted kill takes one backend through the drain → warm restart →
// re-admission ladder, and dumps the balancer's view of the fleet.
func inspectCluster(n int, asJSON bool) {
	c, err := cluster.New(cluster.Options{
		Backends:           n,
		Mode:               cubicleos.ModeFull,
		Seed:               7,
		CheckpointInterval: 5_000_000,
		HedgeAfter:         20_000_000,
		Script:             []cluster.Event{{AtCycle: 25_000_000, Backend: n / 2, Action: cluster.ActKill}},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.PutFile("/probe.bin", make([]byte, 16<<10)); err != nil {
		log.Fatal(err)
	}
	st, err := c.RunOpenLoop(cluster.RunOptions{Path: "/probe.bin", Rate: 1500 * float64(n), Requests: 90 * n})
	if err != nil {
		log.Fatal(err)
	}
	rep := clusterReport{
		Backends: n, Policy: c.O.Policy.String(),
		Retries: st.Retries, Hedges: st.Hedges, HedgeWins: st.HedgeWins,
		Failovers: st.Failovers, Drains: st.Drains, Readmits: st.Readmits,
		RouteFaults: st.RouteFaults,
	}
	for _, pb := range st.PerBackend {
		rep.Fleet = append(rep.Fleet, clusterBackend{
			Index: pb.Index, Health: pb.Health,
			Routed: pb.Routed, OK: pb.OK, Shed: pb.Shed, Errors: pb.Errors, Dropped: pb.Dropped,
			Drains: pb.Drains, Readmits: pb.Readmits,
			Routes: pb.Sys.Routes, Failovers: pb.Sys.Failovers,
			WarmRestarts: pb.Sys.WarmRestarts, ColdRestarts: pb.Sys.ColdRestarts,
			Quarantines: pb.Sys.Quarantines,
		})
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("CLUSTER (%d backends, %s policy)\n", n, rep.Policy)
	fmt.Printf("%-4s %-9s %7s %6s %5s %5s %5s %7s %8s %5s %5s %6s\n",
		"idx", "health", "routed", "ok", "shed", "err", "drop", "drains", "readmits", "warm", "cold", "quar")
	for _, b := range rep.Fleet {
		fmt.Printf("%-4d %-9s %7d %6d %5d %5d %5d %7d %8d %5d %5d %6d\n",
			b.Index, b.Health, b.Routed, b.OK, b.Shed, b.Errors, b.Dropped,
			b.Drains, b.Readmits, b.WarmRestarts, b.ColdRestarts, b.Quarantines)
	}
	fmt.Println("\nBALANCER")
	fmt.Printf("  retries     %6d\n", rep.Retries)
	fmt.Printf("  hedges      %6d (%d won)\n", rep.Hedges, rep.HedgeWins)
	fmt.Printf("  failovers   %6d\n", rep.Failovers)
	fmt.Printf("  drains      %6d (%d re-admissions)\n", rep.Drains, rep.Readmits)
	fmt.Printf("  route faults %5d\n", rep.RouteFaults)
}

func main() {
	workload := flag.Bool("workload", true, "run a short HTTP workload before dumping")
	asJSON := flag.Bool("json", false, "emit the report as machine-readable JSON")
	ring := flag.Int("ring", 1<<14, "trace ring capacity in events per core shard (0 = tracing off)")
	metricsInterval := flag.Uint64("metrics-interval", 500_000, "metrics snapshot interval in virtual cycles (0 = metrics off)")
	checkpoint := flag.Uint64("checkpoint", 500_000, "checkpoint interval in virtual cycles (0 = checkpoints off)")
	clusterN := flag.Int("cluster", 0, "inspect an N-backend virtual cluster after a scripted failover instead of one system")
	flag.Parse()

	if *clusterN > 0 {
		inspectCluster(*clusterN, *asJSON)
		return
	}

	tgt, err := siege.NewTargetOpts(siege.Options{
		Mode:               cubicleos.ModeFull,
		TraceEvents:        *ring,
		MetricsInterval:    *metricsInterval,
		CheckpointInterval: *checkpoint,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *workload {
		if err := tgt.PutFile("/probe.bin", make([]byte, 16<<10)); err != nil {
			log.Fatal(err)
		}
		// A few requests so the dump shows live window tables, edge counts
		// and at least a couple of metrics-interval snapshots.
		for i := 0; i < 4; i++ {
			if _, err := tgt.Fetch("/probe.bin"); err != nil {
				log.Fatal(err)
			}
		}
	}
	m := tgt.Sys.M

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(buildReport(m)); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Println("CUBICLES")
	fmt.Printf("%-4s %-10s %-9s %-4s %-8s %-11s %-8s %s\n",
		"id", "name", "kind", "key", "windows", "health", "restarts", "exports")
	for _, c := range m.Cubicles() {
		exports := c.Exports()
		sort.Strings(exports)
		show := exports
		if len(show) > 4 {
			show = append(append([]string{}, show[:4]...), fmt.Sprintf("… (%d total)", len(exports)))
		}
		fmt.Printf("%-4d %-10s %-9s %-4d %-8d %-11s %-8d %v\n", c.ID, c.Name, c.Kind, c.Key,
			m.WindowCount(c.ID), c.Health(), c.Restarts(), show)
		if lf := c.LastFault(); lf != nil {
			fmt.Printf("     last fault: %v\n", lf)
		}
		if info, ok := m.LastCheckpoint(c.ID); ok {
			fmt.Printf("     last checkpoint: cycle %d, %d bytes, %d heap pages\n",
				info.Cycle, info.Bytes, info.Pages)
		}
	}

	fmt.Println("\nPAGE MAP (pages by owner and type)")
	type key struct {
		owner int
		typ   vm.PageType
	}
	counts := map[key]int{}
	m.AS.ForEachPage(func(pn uint64, p *vm.Page) {
		counts[key{p.Owner, p.Type}]++
	})
	names := map[int]string{int(cubicle.MonitorID): "MONITOR"}
	for _, c := range m.Cubicles() {
		names[int(c.ID)] = c.Name
	}
	var keys []key
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].owner != keys[j].owner {
			return keys[i].owner < keys[j].owner
		}
		return keys[i].typ < keys[j].typ
	})
	for _, k := range keys {
		owner := names[k.owner]
		if owner == "" {
			owner = fmt.Sprintf("cubicle-%d", k.owner)
		}
		fmt.Printf("  %-10s %-7s %6d pages (%d KiB)\n", owner, k.typ, counts[k],
			counts[k]*vm.PageSize/1024)
	}

	fmt.Println("\nTRAMPOLINES")
	trs := m.Trampolines()
	fmt.Printf("  %d cross-cubicle call trampolines installed (one per public symbol)\n", len(trs))
	for i, tr := range trs {
		if i >= 8 {
			fmt.Printf("  … and %d more\n", len(trs)-8)
			break
		}
		fmt.Printf("  %s\n", tr.Symbol())
	}

	st := m.Stats
	fmt.Println("\nEVENT COUNTERS")
	fmt.Printf("  cross-cubicle calls   %10d\n", st.CallsTotal)
	fmt.Printf("  shared-cubicle calls  %10d\n", st.SharedCalls)
	fmt.Printf("  protection traps      %10d (%d denied)\n", st.Faults, st.DeniedFaults)
	fmt.Printf("  page retags           %10d\n", st.Retags)
	fmt.Printf("  wrpkru executions     %10d\n", st.WRPKRUs)
	fmt.Printf("  window operations     %10d\n", st.WindowOps)
	fmt.Printf("  window search steps   %10d\n", st.WindowSearchSteps)
	fmt.Printf("  stack arg bytes       %10d\n", st.StackBytesCopied)
	fmt.Printf("  bulk bytes copied     %10d\n", st.BulkBytesCopied)
	fmt.Printf("  contained faults      %10d (%d injected)\n", st.ContainedFaults, st.InjectedFaults)
	fmt.Printf("  quarantines           %10d (%d restarts)\n", st.Quarantines, st.Restarts)
	fmt.Printf("  warm restarts         %10d (%d cold)\n", st.WarmRestarts, st.ColdRestarts)
	fmt.Printf("  checkpoints taken     %10d (%d bytes)\n", st.Checkpoints, st.CheckpointBytes)
	fmt.Printf("  load sheds            %10d\n", st.Sheds)
	fmt.Printf("  deadline faults       %10d\n", st.DeadlineFaults)
	fmt.Printf("  quota faults          %10d\n", st.QuotaFaults)
	fmt.Printf("  crossing retries      %10d\n", st.Retries)
	fmt.Printf("  span-TLB hits         %10d (%d misses, %d invalidations)\n",
		st.TLBHits, st.TLBMisses, st.TLBInvalidations)
	fmt.Printf("  TLB shootdowns        %10d (%d remote entries cleared)\n",
		st.TLBShootdowns, st.TLBShootdownInvalidations)
	fmt.Printf("  virtual time          %10d cycles (%.3f ms at 2.2 GHz)\n",
		m.Clock.Cycles(), float64(m.Clock.Duration().Microseconds())/1000)

	if trc := m.Tracer(); trc != nil {
		fmt.Println("\nTRACE RING SHARDS")
		for c := 0; c < trc.Cores(); c++ {
			fmt.Printf("  core %d: %d events recorded, %d dropped, %d retained in ring\n",
				c, trc.ShardRecorded(c), trc.ShardDropped(c), len(trc.ShardEvents(c)))
		}
	}
	if m.MetricsEnabled() {
		fmt.Println("\nMETRICS PIPELINE")
		fmt.Printf("  interval %d cycles; %d snapshots recorded, %d dropped from ring\n",
			m.MetricsInterval(), m.MetricsRecorded(), m.MetricsDropped())
		if s, ok := m.LastMetricsSample(); ok {
			fmt.Printf("  last sample: cycle %d  calls/s %.0f  faults/s %.0f  xing p99 %dcy\n",
				s.Cycle, s.CallRate, s.FaultRate, s.CallP99)
		}
	}
}
