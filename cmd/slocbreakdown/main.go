// Command slocbreakdown regenerates Table 2 of the paper — the size of
// each CubicleOS component — for this reproduction, by counting
// non-blank, non-comment Go source lines per subsystem. With -effort it
// also reports the "developer effort" rows: the window-management code
// the ported applications needed (§6.2).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// groups maps Table 2 rows to source directories.
var groups = []struct {
	name string
	desc string
	dirs []string
}{
	{"Monitor/runtime", "cubicles, windows, trampolines, loader, builder", []string{"internal/cubicle"}},
	{"Hardware model", "simulated memory, MPK, object code, cost model", []string{"internal/vm", "internal/mpk", "internal/isa", "internal/cycles"}},
	{"Unikraft components", "VFS, RAMFS, LWIP, NETDEV, ALLOC, TIME, PLAT, libc, sched", []string{
		"internal/vfscore", "internal/ramfs", "internal/lwip", "internal/netdev",
		"internal/ualloc", "internal/uktime", "internal/plat", "internal/ulibc",
		"internal/urandom", "internal/uksched", "internal/boot"}},
	{"SQLite", "pager, B+tree, SQL engine, speedtest1", []string{"internal/sqldb", "internal/speedtest"}},
	{"NGINX", "HTTP server, siege client", []string{"internal/httpd", "internal/siege"}},
	{"Baselines", "microkernel IPC models, Linux baseline", []string{"internal/ukernel"}},
	{"Experiments", "figure harness", []string{"internal/experiments"}},
	{"Tools & examples", "cmd/, examples/, public facade", []string{"cmd", "examples", "."}},
}

func main() {
	effort := flag.Bool("effort", false, "also report the porting-effort rows of §6.2")
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	fmt.Printf("%-22s %8s %8s  %s\n", "component", "sloc", "tests", "description")
	var totalCode, totalTest int
	for _, g := range groups {
		var code, test int
		for _, dir := range g.dirs {
			c, t := countDir(filepath.Join(*root, dir), dir == ".")
			code += c
			test += t
		}
		totalCode += code
		totalTest += test
		fmt.Printf("%-22s %8d %8d  %s\n", g.name, code, test, g.desc)
	}
	fmt.Printf("%-22s %8d %8d\n", "TOTAL", totalCode, totalTest)

	if *effort {
		fmt.Println("\nporting effort (window-management and deployment code, cf. §6.2):")
		for _, f := range []struct{ name, file string }{
			{"SQLite port", "internal/experiments/sqlite.go"},
			{"NGINX port", "internal/siege/siege.go"},
		} {
			c, _ := countFile(filepath.Join(*root, f.file))
			fmt.Printf("  %-14s %5d sloc (paper: SQLite 620, NGINX 390)\n", f.name, c)
		}
	}
}

// countDir counts code and test SLOC under dir (.go files only);
// shallow=true restricts to the directory itself.
func countDir(dir string, shallow bool) (code, test int) {
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			if info != nil && info.IsDir() && shallow && path != dir {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		n, _ := countFile(path)
		if strings.HasSuffix(path, "_test.go") {
			test += n
		} else {
			code += n
		}
		return nil
	})
	return code, test
}

// countFile counts non-blank, non-comment lines.
func countFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	inBlock := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if inBlock {
			if strings.Contains(line, "*/") {
				inBlock = false
			}
			continue
		}
		switch {
		case line == "", strings.HasPrefix(line, "//"):
		case strings.HasPrefix(line, "/*"):
			if !strings.Contains(line, "*/") {
				inBlock = true
			}
		default:
			n++
		}
	}
	return n, sc.Err()
}

// sorted is kept for stable future extension of the table.
var _ = sort.Strings
