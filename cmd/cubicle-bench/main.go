// Command cubicle-bench regenerates the tables and figures of the
// CubicleOS paper's evaluation (§6) as text rows and series.
//
// Usage:
//
//	cubicle-bench -fig 6          # SQLite query times × 4 configurations
//	cubicle-bench -fig 7          # NGINX latency vs transfer size
//	cubicle-bench -fig 5          # NGINX cubicle call-count graph
//	cubicle-bench -fig 8          # SQLite cubicle call-count graph
//	cubicle-bench -fig 10a        # slowdown vs Linux
//	cubicle-bench -fig 10b        # 4-vs-3 compartment slowdown per kernel
//	cubicle-bench -fig all        # everything
//
// The -size flag scales the speedtest1 workload (the paper's --stat; 100
// is the default scale).
package main

import (
	"flag"
	"fmt"
	"os"

	"cubicleos/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5, 6, 7, 8, 10a, 10b, all")
	size := flag.Int("size", 100, "speedtest1 scale (--stat equivalent)")
	requests := flag.Int("requests", 8, "requests for the Figure 5 measurement window")
	flag.Parse()

	run := func(name string, fn func() error) {
		fmt.Printf("==== %s ====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	want := func(f string) bool { return *fig == "all" || *fig == f }

	if want("6") {
		run("Figure 6: SQLite query execution times (cycles)", func() error {
			rows, err := experiments.Fig6(*size)
			if err != nil {
				return err
			}
			fmt.Printf("%-6s %-5s %14s %14s %14s %14s %8s\n",
				"query", "group", "unikraft", "no-mpk", "no-acl", "cubicleos", "ratio")
			for _, r := range rows {
				grp := "B"
				if r.GroupA {
					grp = "A"
				}
				fmt.Printf("%-6d %-5s %14d %14d %14d %14d %8.2f\n",
					r.ID, grp, r.Unikraft, r.NoMPK, r.NoACL, r.Full, r.Ratio())
			}
			s := experiments.Summarise(rows)
			fmt.Printf("\ngroup A mean slowdown %.2fx (paper: ~1.8x); steps: trampolines %+.0f%%, MPK %+.0f%%, windows %+.0f%%\n",
				s.GroupASlowdown, (s.ATramp-1)*100, (s.AMPK-1)*100, (s.AACL-1)*100)
			fmt.Printf("group B mean slowdown %.2fx (paper: ~8x); steps: trampolines %+.0f%%, MPK %+.0f%%, windows %+.0f%%\n",
				s.GroupBSlowdown, (s.BTramp-1)*100, (s.BMPK-1)*100, (s.BACL-1)*100)
			return nil
		})
	}
	if want("7") {
		run("Figure 7: NGINX download latency vs transfer size", func() error {
			rows, err := experiments.Fig7()
			if err != nil {
				return err
			}
			fmt.Printf("%12s %14s %14s %8s\n", "size (B)", "baseline (ms)", "cubicleos (ms)", "ratio")
			for _, r := range rows {
				fmt.Printf("%12d %14.2f %14.2f %8.2f\n", r.Size, r.BaselineMs, r.CubicleOSMs, r.Ratio())
			}
			return nil
		})
	}
	if want("5") {
		run("Figure 5: NGINX cubicle call counts (measurement window)", func() error {
			g, err := experiments.Fig5(*requests)
			if err != nil {
				return err
			}
			fmt.Print(g.String())
			return nil
		})
	}
	if want("8") {
		run("Figure 8: SQLite cubicle call counts (including boot)", func() error {
			g, err := experiments.Fig8(*size)
			if err != nil {
				return err
			}
			fmt.Print(g.String())
			return nil
		})
	}
	if want("9") {
		run("Figure 9: partitioning configurations", func() error {
			fmt.Print(`(a) 3 components                 (b) 4 components

  [ SQLITE ]   [ TIMER ]          [ SQLITE ]   [ TIMER ]
       \          /                    \          /
  [ CORE + RAMFS ]                 [   CORE   ]--[ RAMFS ]
       |                               |
  [  KERNEL   ]                    [  KERNEL  ]

CORE combines the PLAT, VFSCORE, ALLOC and BOOT cubicles (§6.5).
On CubicleOS the KERNEL row is the trusted monitor; on the microkernel
baselines it is the respective kernel with message-based IPC.
`)
			return nil
		})
	}
	if want("10a") {
		run("Figure 10a: speedtest1 slowdown vs Linux", func() error {
			rows, err := experiments.Fig10a(*size)
			if err != nil {
				return err
			}
			for _, r := range rows {
				fmt.Printf("%-14s %6.2fx\n", r.System, r.Slowdown)
			}
			return nil
		})
	}
	if want("10b") {
		run("Figure 10b: slowdown of separating RAMFS (4 vs 3 compartments)", func() error {
			rows, err := experiments.Fig10b(*size)
			if err != nil {
				return err
			}
			for _, r := range rows {
				fmt.Printf("%-14s %6.2fx\n", r.Kernel, r.Slowdown)
			}
			return nil
		})
	}
}
