// Command cubicle-trace boots the siege/NGINX deployment with the
// observability layer enabled from cycle 0, drives an HTTP workload, and
// emits the run in one of four formats:
//
//	-format chrome    Chrome trace_event JSON — load in Perfetto or
//	                  chrome://tracing to see cross-cubicle call spans,
//	                  fault handler costs, retags and wrpkru instants on
//	                  the virtual-time axis
//	-format prom      Prometheus text exposition: event counters, per-edge
//	                  call-latency histograms with quantiles, per-cubicle
//	                  cycle totals
//	-format json      machine-readable snapshot (counters, edge digests,
//	                  per-cubicle profile)
//	-format profile   human-readable per-cubicle cycle profile
//
// With -check the emitted chrome/json output is additionally validated to
// round-trip through encoding/json, and the per-cubicle profile total is
// checked against the virtual clock — the invariants scripts/check.sh
// smoke-tests in CI.
//
// With -replay the command becomes a record/replay determinism check: the
// same workload (same seed, same chaos schedule) is executed twice, the
// second run halting its virtual clock at -until cycles (0 = run to the
// end), and the two shard-merged event streams must agree bit-identically
// on every event with Cycle <= until. Any divergence — one event, one
// field — is a determinism bug and exits non-zero.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"cubicleos"
	"cubicleos/internal/cubicle"
	"cubicleos/internal/ramfs"
	"cubicleos/internal/siege"
	"cubicleos/internal/trace"
)

func main() {
	format := flag.String("format", "chrome", "output: chrome, prom, json, profile")
	mode := flag.String("mode", "full", "isolation mode: unikraft, no-mpk, no-acl, full")
	requests := flag.Int("requests", 20, "number of GET requests to issue")
	size := flag.Int("size", 16<<10, "static file size in bytes")
	ring := flag.Int("ring", 1<<16, "trace ring capacity in events")
	sample := flag.Uint64("sample", 100_000, "profiler sample period in virtual cycles (0 = spans only)")
	out := flag.String("o", "", "output file (default stdout)")
	check := flag.Bool("check", false, "validate output invariants and report them on stderr")
	cores := flag.Int("cores", 1, "simulated cores: > 1 boots per-core clocks and per-core trace ring shards")
	chaosSeed := flag.Uint64("chaos-seed", 0, "run under supervision with deterministic fault injection into RAMFS from this seed (0 = off)")
	checkpoint := flag.Uint64("checkpoint", 0, "checkpoint interval in virtual cycles (0 = off): quiescent cubicles are snapshotted and supervised restarts restore warm state")
	replay := flag.Bool("replay", false, "record/replay determinism check: execute the run twice and compare the event streams bit-identically")
	until := flag.Uint64("until", 0, "with -replay: halt the replay run's virtual clock at this cycle and compare events with Cycle <= until (0 = full run)")
	flag.Parse()

	var m cubicleos.Mode
	switch *mode {
	case "unikraft":
		m = cubicleos.ModeUnikraft
	case "no-mpk":
		m = cubicleos.ModeTrampoline
	case "no-acl":
		m = cubicleos.ModeNoACL
	case "full":
		m = cubicleos.ModeFull
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	// mkOpts builds a fresh option set per boot: the replay path boots the
	// deployment twice and must not share mutable config across runs.
	mkOpts := func() siege.Options {
		opts := siege.Options{Mode: m, TraceEvents: *ring, TraceSamplePeriod: *sample,
			SMPCores: *cores, CheckpointInterval: *checkpoint}
		if *chaosSeed != 0 {
			policy := cubicleos.DefaultRestartPolicy()
			policy.MaxRestarts = 1000 // the smoke asserts recovery, not death
			policy.CrossingBudget = 200_000_000
			opts.Supervision = &policy
			opts.Chaos = &cubicleos.ChaosConfig{
				Seed:             *chaosSeed,
				Target:           ramfs.Name,
				ProtAtCrossing:   0.010,
				CFIAtCrossing:    0.003,
				BudgetAtCrossing: 0.002,
				LeakAtCrossing:   0.005,
				ProtAtWindowOp:   0.003,
				ProtAtRetag:      0.002,
			}
		}
		return opts
	}

	if *replay {
		runReplay(mkOpts, *requests, *size, *chaosSeed, *until)
		return
	}

	tgt, err := runWorkload(mkOpts(), *requests, *size, *chaosSeed, 0)
	if err != nil {
		log.Fatal(err)
	}
	if *chaosSeed != 0 {
		if tgt.Sys.M.Stats.InjectedFaults == 0 {
			log.Fatalf("chaos seed %d injected no faults over %d requests", *chaosSeed, *requests)
		}
		recovered := false
		for i := 0; i < 50 && !recovered; i++ {
			if err := tgt.PutFile("/trace.bin", make([]byte, *size)); err != nil {
				// Still in quarantine backoff; wait it out on the virtual clock.
				tgt.Sys.M.Clock.Charge(cubicleos.DefaultRestartPolicy().BackoffMax)
				continue
			}
			if res, err := tgt.Fetch("/trace.bin"); err == nil && res.Status == 200 {
				recovered = true
			}
		}
		if !recovered {
			log.Fatal("server did not recover to 200 after chaos was disarmed")
		}
	}

	trc := tgt.Sys.M.Tracer()
	var buf bytes.Buffer
	switch *format {
	case "chrome":
		err = trc.WriteChromeTrace(&buf)
	case "prom":
		err = trc.WritePrometheus(&buf)
	case "json":
		err = trc.WriteJSON(&buf)
	case "profile":
		writeProfile(&buf, tgt)
	default:
		log.Fatalf("unknown format %q", *format)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *check {
		validate(tgt, *format, buf.Bytes())
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		log.Fatal(err)
	}
}

// runWorkload boots a target and drives the request loop. With stop != 0
// the run halts as soon as the virtual clock reaches stop (the replay
// side of a record/replay pair); halting only reads the clock, so a
// halted run's step sequence is a bit-identical prefix of a full one.
func runWorkload(opts siege.Options, requests, size int, chaosSeed, stop uint64) (*siege.Target, error) {
	tgt, err := siege.NewTargetOpts(opts)
	if err != nil {
		return nil, err
	}
	if err := tgt.PutFile("/trace.bin", make([]byte, size)); err != nil {
		return nil, err
	}
	if chaos := tgt.Sys.Chaos; chaos != nil {
		chaos.Arm()
	}
	for i := 0; i < requests; i++ {
		var res *siege.Result
		var err error
		if stop != 0 {
			res, err = tgt.FetchUntil("/trace.bin", stop)
			if errors.Is(err, siege.ErrHalted) {
				break
			}
		} else {
			res, err = tgt.Fetch("/trace.bin")
		}
		if chaosSeed != 0 {
			// Under chaos, degraded responses (503, 404 after a RAMFS
			// restart, truncated bodies) are the expected behaviour; the run
			// only has to survive and recover, never crash.
			if err == nil && res.Status == 404 {
				_ = tgt.PutFile("/trace.bin", make([]byte, size))
			}
			continue
		}
		if err != nil {
			return nil, err
		}
		if res.Status != 200 {
			return nil, fmt.Errorf("request %d: status %d", i, res.Status)
		}
	}
	if chaos := tgt.Sys.Chaos; chaos != nil {
		chaos.Disarm()
	}
	return tgt, nil
}

// runReplay executes the workload twice — record, then replay halted at
// `until` — and requires the shard-merged event streams to agree
// bit-identically on every event with Cycle <= until.
func runReplay(mkOpts func() siege.Options, requests, size int, chaosSeed, until uint64) {
	rec, err := runWorkload(mkOpts(), requests, size, chaosSeed, 0)
	if err != nil {
		log.Fatalf("record run: %v", err)
	}
	end := rec.Sys.M.Clock.Cycles()
	cutoff := until
	if cutoff == 0 || cutoff > end {
		cutoff = end
	}
	rep, err := runWorkload(mkOpts(), requests, size, chaosSeed, until)
	if err != nil {
		log.Fatalf("replay run: %v", err)
	}
	recTrc, repTrc := rec.Sys.M.Tracer(), rep.Sys.M.Tracer()
	// A ring overflow evicts the oldest events, so the retained stream is a
	// suffix — the prefix comparison is only sound when nothing was lost.
	if d := recTrc.Dropped() + repTrc.Dropped(); d != 0 {
		log.Fatalf("trace ring overflowed (%d events dropped); raise -ring for a sound prefix comparison", d)
	}
	a := prefix(recTrc.Events(), cutoff)
	b := prefix(repTrc.Events(), cutoff)
	if len(a) != len(b) {
		log.Fatalf("replay diverged: %d events with cycle <= %d recorded, %d replayed", len(a), cutoff, len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			log.Fatalf("replay diverged at event %d (cycle <= %d):\n  recorded: %+v\n  replayed: %+v",
				i, cutoff, a[i], b[i])
		}
	}
	fmt.Fprintf(os.Stderr, "replay ok: %d events bit-identical up to cycle %d (record ran to %d, replay halted at %d) over %d core shards\n",
		len(a), cutoff, end, rep.Sys.M.Clock.Cycles(), recTrc.Cores())
}

// prefix returns the events with Cycle <= cutoff; the merged stream is
// nondecreasing in cycle, so this is a true stream prefix.
func prefix(events []trace.Event, cutoff uint64) []trace.Event {
	for i, ev := range events {
		if ev.Cycle > cutoff {
			return events[:i]
		}
	}
	return events
}

// writeProfile prints the per-cubicle cycle profile as a table.
func writeProfile(w io.Writer, tgt *siege.Target) {
	trc := tgt.Sys.M.Tracer()
	prof := trc.Profile()
	clock := tgt.Sys.M.Clock.Cycles()
	fmt.Fprintf(w, "PER-CUBICLE CYCLE PROFILE (%s, %d requests logged by NGINX)\n",
		tgt.Sys.M.Mode, tgt.Srv.Requests)
	fmt.Fprintf(w, "%-12s %14s %7s %10s\n", "cubicle", "cycles", "%", "samples")
	for _, e := range prof.Entries {
		fmt.Fprintf(w, "%-12s %14d %6.2f%% %10d\n", e.Name, e.Cycles, e.Percent, e.Samples)
	}
	fmt.Fprintf(w, "%-12s %14d %6.2f%% %10d\n", "TOTAL", prof.TotalCycles,
		100*float64(prof.TotalCycles)/float64(clock), prof.Samples)
	fmt.Fprintf(w, "virtual clock %d cycles; profile covers %.3f%% of it\n",
		clock, 100*float64(prof.TotalCycles)/float64(clock))
}

// validate asserts the acceptance invariants of the emitted data.
func validate(tgt *siege.Target, format string, output []byte) {
	m := tgt.Sys.M
	trc := m.Tracer()
	fail := func(f string, a ...any) { log.Fatalf("check failed: "+f, a...) }

	switch format {
	case "chrome", "json":
		var v any
		if err := json.Unmarshal(output, &v); err != nil {
			fail("%s output does not round-trip through encoding/json: %v", format, err)
		}
	}

	// Trace-derived counters must equal the legacy Stats exactly.
	derived := cubicle.StatsFromTrace(trc)
	if got, want := derived.CallsTotal, m.Stats.CallsTotal; got != want {
		fail("trace-derived calls %d != stats %d", got, want)
	}
	if got, want := derived.Faults, m.Stats.Faults; got != want {
		fail("trace-derived faults %d != stats %d", got, want)
	}
	if got, want := derived.Retags, m.Stats.Retags; got != want {
		fail("trace-derived retags %d != stats %d", got, want)
	}
	if got, want := derived.WRPKRUs, m.Stats.WRPKRUs; got != want {
		fail("trace-derived wrpkrus %d != stats %d", got, want)
	}
	if got, want := derived.ContainedFaults, m.Stats.ContainedFaults; got != want {
		fail("trace-derived contained faults %d != stats %d", got, want)
	}
	if got, want := derived.Quarantines, m.Stats.Quarantines; got != want {
		fail("trace-derived quarantines %d != stats %d", got, want)
	}
	if got, want := derived.Restarts, m.Stats.Restarts; got != want {
		fail("trace-derived restarts %d != stats %d", got, want)
	}
	if got, want := derived.InjectedFaults, m.Stats.InjectedFaults; got != want {
		fail("trace-derived injected faults %d != stats %d", got, want)
	}
	if got, want := derived.Sheds, m.Stats.Sheds; got != want {
		fail("trace-derived sheds %d != stats %d", got, want)
	}
	if got, want := derived.DeadlineFaults, m.Stats.DeadlineFaults; got != want {
		fail("trace-derived deadline faults %d != stats %d", got, want)
	}
	if got, want := derived.QuotaFaults, m.Stats.QuotaFaults; got != want {
		fail("trace-derived quota faults %d != stats %d", got, want)
	}
	if got, want := derived.Retries, m.Stats.Retries; got != want {
		fail("trace-derived retries %d != stats %d", got, want)
	}
	if got, want := derived.Checkpoints, m.Stats.Checkpoints; got != want {
		fail("trace-derived checkpoints %d != stats %d", got, want)
	}
	if got, want := derived.CheckpointBytes, m.Stats.CheckpointBytes; got != want {
		fail("trace-derived checkpoint bytes %d != stats %d", got, want)
	}
	if got, want := derived.WarmRestarts, m.Stats.WarmRestarts; got != want {
		fail("trace-derived warm restarts %d != stats %d", got, want)
	}
	if got, want := derived.ColdRestarts, m.Stats.ColdRestarts; got != want {
		fail("trace-derived cold restarts %d != stats %d", got, want)
	}
	if m.Stats.Restarts != m.Stats.WarmRestarts+m.Stats.ColdRestarts {
		fail("restarts %d != warm %d + cold %d", m.Stats.Restarts, m.Stats.WarmRestarts, m.Stats.ColdRestarts)
	}
	for e, n := range m.Stats.Calls {
		if derived.Calls[e] != n {
			fail("edge %d->%d: trace %d != stats %d", e.From, e.To, derived.Calls[e], n)
		}
	}

	// SMP merge invariants over the sharded rings. The merged stream must
	// be totally ordered by (Cycle, Core, Seq) — nondecreasing in GVT with
	// a deterministic tie-break — each per-core subsequence must be
	// strictly ordered by its shard sequence numbers, and the per-core
	// event counts must sum to the legacy totals, retained and recorded
	// alike: sharding is not allowed to lose or invent events.
	events := trc.Events()
	lastSeq := make(map[int16]uint64)
	seenCore := make(map[int16]bool)
	perCore := make(map[int16]int)
	for i, ev := range events {
		if i > 0 {
			p := events[i-1]
			if ev.Cycle < p.Cycle {
				fail("merged stream regresses in GVT at %d: cycle %d after %d", i, ev.Cycle, p.Cycle)
			}
			if ev.Cycle == p.Cycle && (ev.Core < p.Core || (ev.Core == p.Core && ev.Seq < p.Seq)) {
				fail("merged stream breaks the (cycle, core, seq) tie-break at %d", i)
			}
		}
		if seenCore[ev.Core] && ev.Seq <= lastSeq[ev.Core] {
			fail("core %d subsequence not strictly ordered: seq %d after %d", ev.Core, ev.Seq, lastSeq[ev.Core])
		}
		seenCore[ev.Core] = true
		lastSeq[ev.Core] = ev.Seq
		perCore[ev.Core]++
	}
	var retained, recorded, dropped uint64
	for c := 0; c < trc.Cores(); c++ {
		retained += uint64(len(trc.ShardEvents(c)))
		recorded += trc.ShardRecorded(c)
		dropped += trc.ShardDropped(c)
	}
	if retained != uint64(len(events)) {
		fail("shard events sum to %d, merged stream has %d", retained, len(events))
	}
	if recorded != trc.Recorded() || dropped != trc.Dropped() {
		fail("shard accounting %d recorded/%d dropped != totals %d/%d",
			recorded, dropped, trc.Recorded(), trc.Dropped())
	}
	if recorded-dropped != uint64(len(events)) {
		fail("recorded %d - dropped %d != %d retained events", recorded, dropped, len(events))
	}

	// The per-cubicle profile must account for the whole virtual clock.
	prof := trc.Profile()
	clock := m.Clock.Cycles()
	if clock == 0 {
		fail("virtual clock did not advance")
	}
	cover := float64(prof.TotalCycles) / float64(clock)
	if cover < 0.99 || cover > 1.01 {
		fail("profile covers %.4f of the virtual clock (want within 1%%)", cover)
	}
	fmt.Fprintf(os.Stderr, "check ok: %d events over %d core shards, stats match, merge ordered, profile covers %.4f%% of %d cycles\n",
		trc.Recorded(), trc.Cores(), 100*cover, clock)
}
