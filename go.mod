module cubicleos

go 1.22
