// Facade-level tests: the public API assembled end to end, as a
// downstream user of the package would drive it.
package cubicleos_test

import (
	"testing"

	"cubicleos"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	b := cubicleos.NewBuilder()
	b.MustAdd(&cubicleos.Component{Name: "FOO", Kind: cubicleos.KindIsolated,
		Exports: []cubicleos.ExportDecl{{Name: "foo_main",
			Fn: func(e *cubicleos.Env, a []uint64) []uint64 { return nil }}}})
	b.MustAdd(&cubicleos.Component{Name: "BAR", Kind: cubicleos.KindIsolated,
		Exports: []cubicleos.ExportDecl{{Name: "bar", RegArgs: 2,
			Fn: func(e *cubicleos.Env, a []uint64) []uint64 {
				e.StoreByte(cubicleos.Addr(a[0]).Add(a[1]), 0xAA)
				return []uint64{1}
			}}}})
	si, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := cubicleos.NewMonitor(cubicleos.ModeFull, cubicleos.DefaultCosts())
	cubs, err := cubicleos.NewLoader(m).LoadSystem(si, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := m.NewEnv(m.NewThread())
	err = m.RunAs(env, cubs["FOO"].ID, func(e *cubicleos.Env) {
		arr := e.HeapAlloc(10)
		bar := m.MustResolve(e.Cubicle(), "BAR", "bar")
		if fault := cubicleos.Catch(func() { bar.Call(e, uint64(arr), 5) }); fault == nil {
			t.Fatal("unwindowed call did not fault")
		}
		wid := e.WindowInit()
		e.WindowAdd(wid, arr, 10)
		e.WindowOpen(wid, e.CubicleOf("BAR"))
		bar.Call(e, uint64(arr), 5)
		if e.LoadByte(arr.Add(5)) != 0xAA {
			t.Fatal("windowed write lost")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats.Faults == 0 || m.Clock.Cycles() == 0 {
		t.Error("no isolation events accounted")
	}
}

func TestFacadeBootStack(t *testing.T) {
	sys := cubicleos.MustBoot(cubicleos.Config{Mode: cubicleos.ModeFull, Net: true})
	names := map[string]bool{}
	for _, c := range sys.M.Cubicles() {
		names[c.Name] = true
	}
	for _, want := range []string{"PLAT", "TIME", "ALLOC", "LIBC", "RANDOM", "VFSCORE", "RAMFS", "NETDEV", "LWIP"} {
		if !names[want] {
			t.Errorf("standard stack missing %s", want)
		}
	}
	if cubicleos.PageSize != 4096 {
		t.Error("page size constant wrong")
	}
}
